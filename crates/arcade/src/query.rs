//! The query-driven measure engine: lazy [`Session`] + batched
//! [`Measure`] evaluation.
//!
//! The Arcade pipeline's expensive artifacts — the compositionally
//! aggregated CTMC per model configuration, its steady-state vector, the
//! down-state list, the absorbing-transformed chain for first-passage
//! measures — are all independent of *which* time points a caller asks
//! about. A [`Session`] therefore owns the [`SystemDef`] and builds each
//! artifact **lazily, once**, answering whole batches of measures in one
//! pass with the batched uniformization kernels of
//! [`ctmc::transient::transient_many`].
//!
//! # Laziness and caching contract
//!
//! Two model configurations exist, each built on first demand and then
//! memoized for the lifetime of the session:
//!
//! * the **availability configuration** (repairs active) — needed by
//!   [`Measure::SteadyStateAvailability`],
//!   [`Measure::SteadyStateUnavailability`],
//!   [`Measure::PointAvailability`], [`Measure::PointUnavailability`],
//!   [`Measure::UnreliabilityWithRepair`], [`Measure::Mttf`],
//!   [`Measure::IntervalAvailability`] and [`Measure::BoundedUntil`];
//! * the **no-repair configuration** (`SystemDef::without_repair`,
//!   §5.1.2) — needed by [`Measure::Reliability`] and
//!   [`Measure::Unreliability`].
//!
//! Within a configuration, the steady-state vector, the down-state list,
//! the absorbing-down chain (the third, derived "absorbing-down"
//! configuration) and the MTTF are each computed at most once. A batch
//! [`Session::evaluate`] call groups the grid-friendly measure kinds —
//! point (un)availability, (un)reliability and first-passage
//! unreliability — so each (configuration, kind) pair costs **one**
//! uniformization sweep over the whole grid, no matter how many points
//! the curve has. The CSL measures ([`Measure::IntervalAvailability`],
//! [`Measure::BoundedUntil`]) are evaluated per instance: their internal
//! grids/transformed chains are query-specific and do not batch.
//!
//! All transient sweeps run through the sharded, steady-state-aware
//! uniformization engine configured by
//! [`EngineOptions::solver`](crate::engine::EngineOptions)`.transient`
//! (see [`ctmc::TransientOptions`]), and share one session-wide
//! [`ctmc::PoissonCache`]: a uniform grid steps by a single `Λ·Δt`, so
//! evaluating several measure kinds over the same grid expands each
//! Poisson weight vector once ([`SessionStats::poisson_hits`] counts the
//! savings).
//!
//! # Example
//!
//! ```
//! use arcade::prelude::*;
//!
//! let mut sys = SystemDef::new("pair");
//! for name in ["p1", "p2"] {
//!     sys.add_component(BcDef::new(name, Dist::exp(0.001), Dist::exp(0.5)));
//! }
//! sys.add_repair_unit(RuDef::new("rep", ["p1", "p2"], RepairStrategy::Fcfs));
//! sys.set_system_down(Expr::and([Expr::down("p1"), Expr::down("p2")]));
//!
//! let session = Session::new(&sys)?;
//! let batch = [
//!     Measure::SteadyStateAvailability,
//!     Measure::Reliability(100.0),
//!     Measure::Reliability(1000.0),
//!     Measure::Mttf,
//! ];
//! let values = session.evaluate(&batch)?;
//! assert!(values[0] > 0.999);
//! assert!(values[2] < values[1]); // reliability decreases
//! # Ok::<(), arcade::ArcadeError>(())
//! ```

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use ctmc::csl::StateFormula;
use ctmc::measures::state_mass as mass;
use ctmc::transient::transient_many_from_ctx;
use ctmc::{Ctmc, MeasureContext, TransientOptions};
use ioimc::budget::{self, Budget, BudgetExceeded};

use crate::ast::SystemDef;
use crate::build::observer::DOWN_BIT;
use crate::chaos;
use crate::engine::{aggregate, Aggregation, EngineOptions};
use crate::error::ArcadeError;
use crate::model::SystemModel;
use crate::sync::{CellError, RetryCell};

/// One dependability measure. Time-dependent variants carry their time
/// point; a batch of them over a grid is answered by one shared sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum Measure {
    /// Long-run availability `A` (availability configuration).
    SteadyStateAvailability,
    /// Long-run unavailability `1 - A`, computed directly for precision.
    SteadyStateUnavailability,
    /// Point availability `A(t)`.
    PointAvailability(f64),
    /// Point unavailability `1 - A(t)`, computed directly.
    PointUnavailability(f64),
    /// Reliability `R(t)` with **no repairs at all** — the paper's Table 1
    /// definition (§5.1.2); evaluated on the no-repair configuration.
    Reliability(f64),
    /// Unreliability `1 - R(t)` of the no-repair configuration.
    Unreliability(f64),
    /// First-passage unreliability **with component repairs active** — the
    /// RCS definition (§5.2.2); evaluated on the availability
    /// configuration with the down states made absorbing.
    UnreliabilityWithRepair(f64),
    /// Mean time to the first system failure (repairs active).
    Mttf,
    /// Expected fraction of `[0, t]` the system is up (CSL layer, §6).
    IntervalAvailability(f64),
    /// `P[Φ U≤t Ψ]` on the availability CTMC (CSL layer, §6).
    BoundedUntil {
        /// The path constraint Φ.
        phi: StateFormula,
        /// The goal formula Ψ.
        psi: StateFormula,
        /// The time bound.
        t: f64,
    },
}

/// Cheap observability into what a [`Session`] has built so far — used by
/// tests and benchmarks to assert the laziness/batching contract, and
/// surfaced by `arcade analyze --json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Compositional aggregations run (≤ 2: availability, no-repair).
    pub aggregations_built: u32,
    /// Absorbing-down transformations built (≤ 2, one per configuration).
    pub absorbing_built: u32,
    /// Steady-state solves run (≤ 1 — only the availability steady state
    /// is ever needed).
    pub steady_solves: u32,
    /// Poisson weight lookups answered from the session memo.
    pub poisson_hits: u64,
    /// Poisson weight lookups that had to expand a fresh vector.
    pub poisson_misses: u64,
    /// Poisson weight vectors evicted from the session's bounded memo
    /// (see [`ctmc::poisson::DEFAULT_CAPACITY`]).
    pub poisson_evictions: u64,
    /// DTMC matrix-vector products this session performed. Counted
    /// through the session's own [`ctmc::MeasureContext`], so concurrent
    /// sessions in one process attribute their work exactly — no
    /// cross-contamination.
    pub dtmc_steps: u64,
    /// Uniformization sweeps (grid segments stepped) this session ran;
    /// per-session like [`SessionStats::dtmc_steps`].
    pub sweeps: u64,
    /// Wall time of the aggregation builds this session ran, in
    /// microseconds (integral so the stats snapshot stays `Eq`).
    pub aggregation_us: u64,
    /// Aggregation wall time spent computing and interning refinement
    /// signatures, in microseconds.
    pub signature_us: u64,
    /// Aggregation wall time spent splitting blocks, in microseconds.
    pub split_us: u64,
    /// Aggregation wall time spent building quotient automata, in
    /// microseconds.
    pub quotient_us: u64,
    /// Worklist refinement rounds across all aggregation builds.
    pub refine_rounds: u64,
    /// Per-state signature computations across all aggregation builds —
    /// the work the worklist discipline actually did (the legacy loop
    /// would have paid `rounds × states`).
    pub states_resigned: u64,
}

/// What one [`Session::evaluate_traced`] call did to the aggregation
/// cache — the attribution record the `arcaded` server turns into its
/// cache-hit / cache-miss / in-flight-dedup counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalTrace {
    /// Aggregations this call ran itself (cold configurations it built).
    pub built: u32,
    /// Aggregations this call needed while another thread was already
    /// building them — it blocked on the shared cell instead of
    /// duplicating the build.
    pub waited: u32,
}

/// The points of a parametric sweep: named rate parameters (declared on
/// the [`SystemDef`] via [`SystemDef::add_param`]) paired with the values
/// to evaluate — either as a cartesian product of per-parameter axes or
/// as an explicit point list. See [`Session::sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParamGrid {
    names: Vec<String>,
    kind: GridKind,
}

#[derive(Debug, Clone, PartialEq)]
enum GridKind {
    /// One value axis per parameter; the points are the cartesian product
    /// in row-major order (the **last** axis varies fastest).
    Cartesian(Vec<Vec<f64>>),
    /// An explicit point list, one value per parameter each.
    Explicit(Vec<Vec<f64>>),
}

impl ParamGrid {
    /// A cartesian grid: one `(parameter name, axis values)` pair per
    /// swept parameter. Points enumerate in row-major order with the last
    /// axis varying fastest. Finite-difference sensitivities are
    /// available on cartesian grids (central differences between grid
    /// neighbors, one-sided at the edges).
    pub fn cartesian(axes: impl IntoIterator<Item = (impl Into<String>, Vec<f64>)>) -> Self {
        let (names, axes) = axes.into_iter().map(|(n, v)| (n.into(), v)).unzip();
        Self {
            names,
            kind: GridKind::Cartesian(axes),
        }
    }

    /// An explicit point list: each point gives one value per named
    /// parameter, in the order of `names`. No sensitivities are computed
    /// for explicit lists (the points need not be axis-aligned).
    pub fn points_list(
        names: impl IntoIterator<Item = impl Into<String>>,
        points: impl Into<Vec<Vec<f64>>>,
    ) -> Self {
        Self {
            names: names.into_iter().map(Into::into).collect(),
            kind: GridKind::Explicit(points.into()),
        }
    }

    /// The swept parameter names, in point-value order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of points the grid enumerates.
    pub fn len(&self) -> usize {
        match &self.kind {
            GridKind::Cartesian(axes) => axes.iter().map(Vec::len).product(),
            GridKind::Explicit(ps) => ps.len(),
        }
    }

    /// Whether the grid enumerates no points at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the points, each a vector of values in `names` order.
    pub fn points(&self) -> Vec<Vec<f64>> {
        match &self.kind {
            GridKind::Explicit(ps) => ps.clone(),
            GridKind::Cartesian(axes) => {
                let total: usize = axes.iter().map(Vec::len).product();
                let mut out = Vec::with_capacity(total);
                let mut idx = vec![0usize; axes.len()];
                for _ in 0..total {
                    out.push(idx.iter().zip(axes).map(|(&i, ax)| ax[i]).collect());
                    for k in (0..axes.len()).rev() {
                        idx[k] += 1;
                        if idx[k] < axes[k].len() {
                            break;
                        }
                        idx[k] = 0;
                    }
                }
                out
            }
        }
    }
}

/// The result of a [`Session::sweep`]: per-point measure values plus
/// finite-difference sensitivities where the grid provides neighbors.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The swept parameter names, in point-value order.
    pub names: Vec<String>,
    /// The evaluated points (one value per name each), in grid order.
    pub points: Vec<Vec<f64>>,
    /// `values[i][j]` — measure `j` of the batch at point `i`. Every row
    /// is bitwise identical to what a fresh session's
    /// [`Session::evaluate_at`] returns at that point.
    pub values: Vec<Vec<f64>>,
    /// `sensitivities[i][j][k]` — the finite-difference estimate of
    /// `∂ measure j / ∂ param k` at point `i`: a central difference
    /// between the two grid neighbors along axis `k` where both exist,
    /// one-sided at the axis edges, and `None` on explicit point lists or
    /// single-value axes.
    pub sensitivities: Vec<Vec<Vec<Option<f64>>>>,
}

/// Per-configuration memo: the aggregation and everything derived from it.
///
/// A `Session` shared behind an [`Arc`] can be queried from many threads
/// at once: the first thread to need an artifact builds it while every
/// concurrent requester **blocks on the same cell** — N simultaneous cold
/// queries trigger exactly one aggregation (the in-flight dedup the
/// `arcaded` server relies on).
///
/// The aggregation slot is a panic-safe [`RetryCell`], because a resident
/// server must contain build failures, not wedge on them:
///
/// * **deterministic** errors (invalid model, nondeterminism, …) are
///   cached as the cell's value — the build cannot be helped by retrying;
/// * **transient** errors ([`ArcadeError::Budget`],
///   [`ArcadeError::Internal`]) are delivered to the building caller and
///   every blocked waiter but *not* cached, so a later request with a
///   larger budget (or after a chaos-injected panic) rebuilds;
/// * a builder **panic** is caught at the cell, every waiter wakes with a
///   typed error, and the cell clears for the next request.
///
/// The derived slots stay [`OnceLock`]s: their builders only panic on a
/// budget checkpoint (or injected fault), and `std`'s `OnceLock` retries
/// after a panicked initializer, so a later request simply recomputes.
#[derive(Debug, Clone, Default)]
struct ConfigCache {
    agg: RetryCell<Result<Arc<Aggregation>, ArcadeError>, ArcadeError>,
    steady: OnceLock<Vec<f64>>,
    down: OnceLock<Arc<[u32]>>,
    absorbing: OnceLock<Ctmc>,
    mttf: OnceLock<f64>,
}

/// Which model configuration a measure needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Config {
    /// Repairs active.
    Availability,
    /// All repair units stripped (`SystemDef::without_repair`).
    NoRepair,
}

/// A lazy, memoizing measure-evaluation session over one system
/// definition. See the module docs for the caching contract.
///
/// A `Session` is `Send + Sync`: share one behind an [`Arc`] and query it
/// from any number of threads. Every cached artifact sits in a
/// [`OnceLock`], so concurrent first requests for the same artifact block
/// on one build instead of duplicating it, and repeat queries are
/// lock-free reads. Answers are identical to single-threaded evaluation —
/// the memoized artifacts are built by exactly the code the serial path
/// runs (and the engines themselves are bitwise thread-count-invariant).
#[derive(Debug)]
pub struct Session {
    def: SystemDef,
    opts: EngineOptions,
    availability: ConfigCache,
    no_repair: ConfigCache,
    /// The session's measurement context: the Poisson weight memo shared
    /// by **all** transient queries of the session (uniform grids step by
    /// one `Δt`, and chains with equal uniformization rates — e.g. the
    /// availability CTMC and its absorbing-down transform — share the
    /// exact `Λ·Δt` keys, so repeated measures over the same grid expand
    /// each weight vector once; the memo is capacity-bounded so large
    /// parameter sweeps cannot grow it without limit), plus the
    /// session-scoped solver work counters behind
    /// [`SessionStats::dtmc_steps`] / [`SessionStats::sweeps`].
    ctx: MeasureContext,
    aggregations_built: AtomicU32,
    absorbing_built: AtomicU32,
    steady_solves: AtomicU32,
    /// Aggregation-phase accounting (µs / counters), accumulated by
    /// whichever thread wins each cold build.
    aggregation_us: AtomicU64,
    signature_us: AtomicU64,
    split_us: AtomicU64,
    quotient_us: AtomicU64,
    refine_rounds: AtomicU64,
    states_resigned: AtomicU64,
}

impl Clone for Session {
    /// Clones the definition, options and every artifact cached so far
    /// (counter snapshots included) — the clone answers warm queries warm.
    fn clone(&self) -> Self {
        Self {
            def: self.def.clone(),
            opts: self.opts.clone(),
            availability: self.availability.clone(),
            no_repair: self.no_repair.clone(),
            ctx: self.ctx.clone(),
            aggregations_built: AtomicU32::new(self.aggregations_built.load(Ordering::Relaxed)),
            absorbing_built: AtomicU32::new(self.absorbing_built.load(Ordering::Relaxed)),
            steady_solves: AtomicU32::new(self.steady_solves.load(Ordering::Relaxed)),
            aggregation_us: AtomicU64::new(self.aggregation_us.load(Ordering::Relaxed)),
            signature_us: AtomicU64::new(self.signature_us.load(Ordering::Relaxed)),
            split_us: AtomicU64::new(self.split_us.load(Ordering::Relaxed)),
            quotient_us: AtomicU64::new(self.quotient_us.load(Ordering::Relaxed)),
            refine_rounds: AtomicU64::new(self.refine_rounds.load(Ordering::Relaxed)),
            states_resigned: AtomicU64::new(self.states_resigned.load(Ordering::Relaxed)),
        }
    }
}

impl Session {
    /// Creates a session with default engine options. Validates the
    /// definition eagerly; builds **nothing** until the first query.
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::Invalid`] for inconsistent definitions.
    pub fn new(def: &SystemDef) -> Result<Self, ArcadeError> {
        crate::model::validate(def)?;
        if def.system_down.is_none() {
            return Err(ArcadeError::invalid("SYSTEM DOWN criterion missing"));
        }
        Ok(Self {
            def: def.clone(),
            opts: EngineOptions::new(),
            availability: ConfigCache::default(),
            no_repair: ConfigCache::default(),
            ctx: MeasureContext::new(),
            aggregations_built: AtomicU32::new(0),
            absorbing_built: AtomicU32::new(0),
            steady_solves: AtomicU32::new(0),
            aggregation_us: AtomicU64::new(0),
            signature_us: AtomicU64::new(0),
            split_us: AtomicU64::new(0),
            quotient_us: AtomicU64::new(0),
            refine_rounds: AtomicU64::new(0),
            states_resigned: AtomicU64::new(0),
        })
    }

    /// Overrides the engine options. Resets nothing — call before the
    /// first query.
    pub fn with_options(mut self, opts: EngineOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The system definition this session answers queries about.
    pub fn def(&self) -> &SystemDef {
        &self.def
    }

    /// What has been built so far.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            aggregations_built: self.aggregations_built.load(Ordering::Relaxed),
            absorbing_built: self.absorbing_built.load(Ordering::Relaxed),
            steady_solves: self.steady_solves.load(Ordering::Relaxed),
            poisson_hits: self.ctx.poisson.hits(),
            poisson_misses: self.ctx.poisson.misses(),
            poisson_evictions: self.ctx.poisson.evictions(),
            dtmc_steps: self.ctx.counters.dtmc_steps(),
            sweeps: self.ctx.counters.sweeps(),
            aggregation_us: self.aggregation_us.load(Ordering::Relaxed),
            signature_us: self.signature_us.load(Ordering::Relaxed),
            split_us: self.split_us.load(Ordering::Relaxed),
            quotient_us: self.quotient_us.load(Ordering::Relaxed),
            refine_rounds: self.refine_rounds.load(Ordering::Relaxed),
            states_resigned: self.states_resigned.load(Ordering::Relaxed),
        }
    }

    fn cache(&self, cfg: Config) -> &ConfigCache {
        match cfg {
            Config::Availability => &self.availability,
            Config::NoRepair => &self.no_repair,
        }
    }

    fn config_def(&self, cfg: Config) -> SystemDef {
        match cfg {
            Config::Availability => self.def.clone(),
            Config::NoRepair => self.def.without_repair(),
        }
    }

    /// The aggregation of `cfg`, built on first use. Concurrent callers
    /// block on the same [`OnceLock`], so a cold configuration is
    /// aggregated exactly once no matter how many threads race for it;
    /// `opts` overrides the engine options the winning build runs with
    /// (results are thread-count-invariant, so which caller wins never
    /// changes the artifact). When `trace` is given, it records whether
    /// this call ran the build itself or blocked on one in flight.
    fn aggregation_traced(
        &self,
        cfg: Config,
        opts: &EngineOptions,
        trace: Option<&TraceCells>,
    ) -> Result<Arc<Aggregation>, ArcadeError> {
        let cache = self.cache(cfg);
        let was_missing = cache.agg.get().is_none();
        let mut ran = false;
        let res = cache.agg.get_or_try_init(|| {
            ran = true;
            let t0 = std::time::Instant::now();
            // Catch panics here (injected faults, budget checkpoints deep
            // in refinement) so waiters blocked on this cell receive a
            // *typed* error instead of a silent retry, and the cell's
            // caching policy below can tell transient failures apart.
            let agg = catch_eval(|| {
                chaos::failpoint("session.agg");
                build_aggregation(&self.config_def(cfg), opts)
            });
            if let Ok(a) = &agg {
                self.aggregations_built.fetch_add(1, Ordering::Relaxed);
                let us = |secs: f64| (secs * 1e6) as u64;
                self.aggregation_us
                    .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                self.signature_us
                    .fetch_add(us(a.refine.signature_secs), Ordering::Relaxed);
                self.split_us
                    .fetch_add(us(a.refine.split_secs), Ordering::Relaxed);
                self.quotient_us
                    .fetch_add(us(a.refine.quotient_secs), Ordering::Relaxed);
                self.refine_rounds
                    .fetch_add(a.refine.refine_rounds, Ordering::Relaxed);
                self.states_resigned
                    .fetch_add(a.refine.states_resigned, Ordering::Relaxed);
            }
            match agg {
                Ok(a) => Ok(Ok(Arc::new(a))),
                // Transient failures are not cached: the same build can
                // succeed later (bigger budget, fault injection over).
                Err(e @ (ArcadeError::Budget(_) | ArcadeError::Internal(_))) => Err(e),
                // Deterministic failures are permanent for this
                // definition — cache them like the artifact.
                Err(e) => Ok(Err(e)),
            }
        });
        if let Some(t) = trace {
            if ran {
                t.built.fetch_add(1, Ordering::Relaxed);
            } else if was_missing {
                t.waited.fetch_add(1, Ordering::Relaxed);
            }
        }
        match res {
            Ok(Ok(a)) => Ok(a),
            Ok(Err(e)) | Err(CellError::Init(e)) => Err(e),
            Err(CellError::Interrupted) => Err(ArcadeError::Internal(
                "in-flight aggregation was interrupted; retry".into(),
            )),
        }
    }

    /// The aggregation of `cfg`, built on first use (session options).
    fn aggregation(&self, cfg: Config) -> Result<Arc<Aggregation>, ArcadeError> {
        self.aggregation_traced(cfg, &self.opts, None)
    }

    /// Builds every configuration in `need` that is still missing. The
    /// configurations are independent (different model variants), so when
    /// more than one is missing they are aggregated on concurrent worker
    /// threads — each worker runs exactly the computation the lazy path
    /// would, so the cached artifacts (and all measures derived from
    /// them) are identical to sequential building.
    ///
    /// # Errors
    ///
    /// Propagates composition/determinism/analysis errors (the first, in
    /// `Config` declaration order).
    fn prefetch(&self, need: &[Config], trace: Option<&TraceCells>) -> Result<(), ArcadeError> {
        let missing: Vec<Config> = need
            .iter()
            .copied()
            .filter(|&c| self.cache(c).agg.get().is_none())
            .collect();
        let threads = ioimc::par::effective_threads(self.opts.threads);
        if missing.len() > 1 && threads > 1 {
            // Split the thread budget across the configuration builds to
            // bound the total thread count. Each worker still routes
            // through the configuration's OnceLock, so a concurrent
            // evaluator racing this prefetch never duplicates a build.
            let worker_opts = self
                .opts
                .clone()
                .with_threads(ioimc::par::split_budget(threads, missing.len()));
            // Carry the caller's ambient budget into the workers (the
            // thread-local does not cross spawns by itself).
            let budget = budget::current();
            let results = ioimc::par::par_map(missing.len(), &missing, |_, &cfg| {
                budget::scope(budget.clone(), || {
                    self.aggregation_traced(cfg, &worker_opts, trace)
                        .map(|_| ())
                })
            });
            for r in results {
                r?;
            }
        } else {
            for c in missing {
                self.aggregation_traced(c, &self.opts, trace)?;
            }
        }
        Ok(())
    }

    /// Eagerly builds **both** model configurations (availability and
    /// no-repair), in parallel when more than one thread is available.
    /// Used by the eager [`crate::analysis::Analysis::run`] wrapper;
    /// purely an optimization — the lazy per-measure path builds the same
    /// artifacts.
    ///
    /// # Errors
    ///
    /// Propagates composition/determinism/analysis errors.
    pub fn prefetch_all(&self) -> Result<(), ArcadeError> {
        self.prefetch(&[Config::Availability, Config::NoRepair], None)
    }

    /// The aggregation of the availability configuration (repairs active),
    /// building it if this is the first query to need it.
    ///
    /// # Errors
    ///
    /// Propagates composition/determinism/analysis errors.
    pub fn availability_model(&self) -> Result<Arc<Aggregation>, ArcadeError> {
        self.aggregation(Config::Availability)
    }

    /// The aggregation of the no-repair configuration (§5.1.2), building
    /// it if this is the first query to need it.
    ///
    /// # Errors
    ///
    /// Propagates composition/determinism/analysis errors.
    pub fn reliability_model(&self) -> Result<Arc<Aggregation>, ArcadeError> {
        self.aggregation(Config::NoRepair)
    }

    fn down_states(&self, cfg: Config) -> Result<Arc<[u32]>, ArcadeError> {
        let agg = self.aggregation(cfg)?;
        Ok(self
            .cache(cfg)
            .down
            .get_or_init(|| agg.ctmc.states_with_label(DOWN_BIT).collect())
            .clone())
    }

    fn steady(&self, cfg: Config) -> Result<&[f64], ArcadeError> {
        let agg = self.aggregation(cfg)?;
        Ok(self.cache(cfg).steady.get_or_init(|| {
            chaos::failpoint("session.solve");
            self.steady_solves.fetch_add(1, Ordering::Relaxed);
            ctmc::steady::steady_state_with(&agg.ctmc, &self.opts.solver)
        }))
    }

    fn absorbing(&self, cfg: Config) -> Result<&Ctmc, ArcadeError> {
        let down = self.down_states(cfg)?;
        let agg = self.aggregation(cfg)?;
        Ok(self.cache(cfg).absorbing.get_or_init(|| {
            self.absorbing_built.fetch_add(1, Ordering::Relaxed);
            agg.ctmc.make_absorbing(down.iter().copied())
        }))
    }

    fn mttf(&self) -> Result<f64, ArcadeError> {
        let down = self.down_states(Config::Availability)?;
        let agg = self.aggregation(Config::Availability)?;
        Ok(*self.cache(Config::Availability).mttf.get_or_init(|| {
            chaos::failpoint("session.solve");
            if down.is_empty() {
                f64::INFINITY
            } else {
                ctmc::absorbing::mean_time_to_absorption_with(&agg.ctmc, &down, &self.opts.solver)
            }
        }))
    }

    fn steady_down_mass(&self) -> Result<f64, ArcadeError> {
        let down = self.down_states(Config::Availability)?;
        let pi = self.steady(Config::Availability)?;
        Ok(mass(&down, pi))
    }

    /// Point unavailabilities over a grid: one batched transient sweep on
    /// the availability CTMC (sharded/steady-state-aware per
    /// [`EngineOptions::solver`], Poisson weights from the session memo).
    fn unavailability_curve(&self, ts: &[f64]) -> Result<Vec<f64>, ArcadeError> {
        let down = self.down_states(Config::Availability)?;
        let agg = self.aggregation(Config::Availability)?;
        let ctmc = &agg.ctmc;
        chaos::failpoint("session.solve");
        Ok(transient_many_from_ctx(
            ctmc,
            &ctmc.initial_distribution(),
            ts,
            &self.opts.solver.transient,
            &self.ctx,
        )
        .iter()
        .map(|pi| mass(&down, pi))
        .collect())
    }

    /// First-passage probabilities over a grid for `cfg`: one cached
    /// absorbing transformation, one batched sweep.
    fn first_passage_curve(&self, cfg: Config, ts: &[f64]) -> Result<Vec<f64>, ArcadeError> {
        let down = self.down_states(cfg)?;
        if down.is_empty() {
            return Ok(vec![0.0; ts.len()]);
        }
        let absorbing = self.absorbing(cfg)?;
        Ok(transient_many_from_ctx(
            absorbing,
            &absorbing.initial_distribution(),
            ts,
            &self.opts.solver.transient,
            &self.ctx,
        )
        .iter()
        .map(|pi| mass(&down, pi))
        .collect())
    }

    /// Builds exactly the configurations `measures` will need, without
    /// evaluating anything, and reports what that did to the aggregation
    /// cache. A subsequent [`Session::evaluate`] of the same batch finds
    /// every aggregation warm — the `arcaded` server uses this to time
    /// the build phase separately from the sweep phase.
    ///
    /// # Errors
    ///
    /// Propagates composition/determinism/analysis errors.
    pub fn prefetch_measures(&self, measures: &[Measure]) -> Result<EvalTrace, ArcadeError> {
        let trace = TraceCells::default();
        self.prefetch(&needed_configs(measures), Some(&trace))?;
        Ok(EvalTrace {
            built: trace.built.load(Ordering::Relaxed),
            waited: trace.waited.load(Ordering::Relaxed),
        })
    }

    /// Evaluates one measure. Prefer [`Session::evaluate`] for curves —
    /// single values still benefit from the session's memoized artifacts.
    ///
    /// # Errors
    ///
    /// Propagates composition/determinism/analysis errors.
    pub fn value(&self, measure: &Measure) -> Result<f64, ArcadeError> {
        Ok(self.evaluate(std::slice::from_ref(measure))?[0])
    }

    /// Evaluates a whole batch in one pass: each needed configuration is
    /// aggregated at most once, and all time points of a kind share one
    /// uniformization sweep. Returns the values in the order of
    /// `measures`.
    ///
    /// # Errors
    ///
    /// Propagates composition/determinism/analysis errors.
    pub fn evaluate(&self, measures: &[Measure]) -> Result<Vec<f64>, ArcadeError> {
        Ok(self.evaluate_traced(measures)?.0)
    }

    /// [`Session::evaluate`] under a wall-clock deadline: the evaluation
    /// aborts cooperatively (at composition chunks, refinement rounds,
    /// uniformization segments, solver sweeps) once `deadline` has
    /// elapsed, returning [`ArcadeError::Budget`] instead of running to
    /// completion. Artifacts finished before the trip stay cached; a
    /// partially built aggregation is discarded, and a later call — with
    /// a larger budget — rebuilds it from scratch.
    ///
    /// # Errors
    ///
    /// [`ArcadeError::Budget`] on deadline expiry; otherwise as
    /// [`Session::evaluate`].
    pub fn evaluate_deadline(
        &self,
        measures: &[Measure],
        deadline: Duration,
    ) -> Result<Vec<f64>, ArcadeError> {
        self.evaluate_bounded(
            measures,
            Arc::new(Budget::unlimited().with_deadline(deadline)),
        )
    }

    /// [`Session::evaluate`] under an explicit [`Budget`] (deadline,
    /// state/transition ceilings, cancellation — see [`ioimc::budget`]).
    /// The budget is installed as the ambient scope of the evaluation and
    /// carried across its internal fan-outs; any panic escaping the
    /// evaluation (a budget checkpoint deep in a solver, an injected
    /// fault) is caught here and classified into [`ArcadeError::Budget`]
    /// or [`ArcadeError::Internal`] — it never unwinds into the caller.
    ///
    /// Hold a clone of the `Arc` and call [`Budget::cancel`] from another
    /// thread to abort an evaluation in flight.
    ///
    /// # Errors
    ///
    /// [`ArcadeError::Budget`] when a limit trips,
    /// [`ArcadeError::Internal`] when the evaluation panicked; otherwise
    /// as [`Session::evaluate`].
    pub fn evaluate_bounded(
        &self,
        measures: &[Measure],
        budget: Arc<Budget>,
    ) -> Result<Vec<f64>, ArcadeError> {
        let scoped = budget.clone();
        match std::panic::catch_unwind(AssertUnwindSafe(|| {
            budget::scope(Some(scoped), || self.evaluate(measures))
        })) {
            Ok(r) => r,
            Err(payload) => Err(classify_panic(payload.as_ref(), Some(&budget))),
        }
    }

    /// [`Session::sweep`] under a wall-clock deadline — the sweep
    /// counterpart of [`Session::evaluate_deadline`].
    ///
    /// # Errors
    ///
    /// [`ArcadeError::Budget`] on deadline expiry; otherwise as
    /// [`Session::sweep`].
    pub fn sweep_deadline(
        &self,
        measures: &[Measure],
        grid: &ParamGrid,
        deadline: Duration,
    ) -> Result<SweepResult, ArcadeError> {
        self.sweep_bounded(
            measures,
            grid,
            Arc::new(Budget::unlimited().with_deadline(deadline)),
        )
    }

    /// [`Session::sweep`] under an explicit [`Budget`] — the sweep
    /// counterpart of [`Session::evaluate_bounded`].
    ///
    /// # Errors
    ///
    /// [`ArcadeError::Budget`] when a limit trips,
    /// [`ArcadeError::Internal`] when the sweep panicked; otherwise as
    /// [`Session::sweep`].
    pub fn sweep_bounded(
        &self,
        measures: &[Measure],
        grid: &ParamGrid,
        budget: Arc<Budget>,
    ) -> Result<SweepResult, ArcadeError> {
        let scoped = budget.clone();
        match std::panic::catch_unwind(AssertUnwindSafe(|| {
            budget::scope(Some(scoped), || self.sweep(measures, grid))
        })) {
            Ok(r) => r,
            Err(payload) => Err(classify_panic(payload.as_ref(), Some(&budget))),
        }
    }

    /// Like [`Session::evaluate`], additionally reporting what this call
    /// did to the aggregation cache: how many cold configurations it
    /// built itself, and how many builds already in flight on other
    /// threads it blocked on ([`EvalTrace`]). A fully warm call reports
    /// zeros for both — the attribution the `arcaded` server's
    /// cache-hit/miss/dedup counters are made of.
    ///
    /// # Errors
    ///
    /// Propagates composition/determinism/analysis errors.
    pub fn evaluate_traced(
        &self,
        measures: &[Measure],
    ) -> Result<(Vec<f64>, EvalTrace), ArcadeError> {
        let trace = TraceCells::default();
        // Gather the time grids per (configuration, kind).
        let mut unavail_ts = Vec::new();
        let mut fp_repair_ts = Vec::new();
        let mut fp_norepair_ts = Vec::new();
        let mut needs_avail = false;
        for m in measures {
            match m {
                Measure::PointAvailability(t) | Measure::PointUnavailability(t) => {
                    unavail_ts.push(*t);
                    needs_avail = true;
                }
                Measure::UnreliabilityWithRepair(t) => {
                    fp_repair_ts.push(*t);
                    needs_avail = true;
                }
                Measure::Reliability(t) | Measure::Unreliability(t) => {
                    fp_norepair_ts.push(*t);
                }
                _ => needs_avail = true,
            }
        }
        // When the batch spans both configurations and neither is built
        // yet, aggregate them concurrently instead of back to back.
        let mut need: Vec<Config> = Vec::new();
        if needs_avail {
            need.push(Config::Availability);
        }
        if !fp_norepair_ts.is_empty() {
            need.push(Config::NoRepair);
        }
        self.prefetch(&need, Some(&trace))?;
        let unavail = if unavail_ts.is_empty() {
            Vec::new()
        } else {
            self.unavailability_curve(&unavail_ts)?
        };
        let fp_repair = if fp_repair_ts.is_empty() {
            Vec::new()
        } else {
            self.first_passage_curve(Config::Availability, &fp_repair_ts)?
        };
        let fp_norepair = if fp_norepair_ts.is_empty() {
            Vec::new()
        } else {
            self.first_passage_curve(Config::NoRepair, &fp_norepair_ts)?
        };

        // Read the batched results back out in measure order.
        let (mut ui, mut ri, mut ni) = (0usize, 0usize, 0usize);
        let mut out = Vec::with_capacity(measures.len());
        for m in measures {
            let v = match m {
                Measure::SteadyStateAvailability => 1.0 - self.steady_down_mass()?,
                Measure::SteadyStateUnavailability => self.steady_down_mass()?,
                Measure::PointAvailability(_) => {
                    ui += 1;
                    1.0 - unavail[ui - 1]
                }
                Measure::PointUnavailability(_) => {
                    ui += 1;
                    unavail[ui - 1]
                }
                Measure::UnreliabilityWithRepair(_) => {
                    ri += 1;
                    fp_repair[ri - 1]
                }
                Measure::Reliability(_) => {
                    ni += 1;
                    1.0 - fp_norepair[ni - 1]
                }
                Measure::Unreliability(_) => {
                    ni += 1;
                    fp_norepair[ni - 1]
                }
                Measure::Mttf => self.mttf()?,
                Measure::IntervalAvailability(t) => {
                    let agg = self.aggregation(Config::Availability)?;
                    1.0 - ctmc::csl::interval_down_fraction_ctx(
                        &agg.ctmc,
                        &StateFormula::down(),
                        *t,
                        &self.opts.solver.transient,
                        &self.ctx,
                    )
                }
                Measure::BoundedUntil { phi, psi, t } => {
                    let agg = self.aggregation(Config::Availability)?;
                    ctmc::csl::until_bounded_ctx(
                        &agg.ctmc,
                        phi,
                        psi,
                        *t,
                        &self.opts.solver.transient,
                        &self.ctx,
                    )
                }
            };
            out.push(v);
        }
        Ok((
            out,
            EvalTrace {
                built: trace.built.load(Ordering::Relaxed),
                waited: trace.waited.load(Ordering::Relaxed),
            },
        ))
    }

    /// Evaluates a measure batch at one parameter point of a parametric
    /// model (one declared via [`SystemDef::add_param`]): the base
    /// aggregation is built (or reused) **once**, its quotient CTMC is
    /// re-rated to `values` — same CSR layout, only the Markovian rates
    /// rewritten through the carried rate forms — and the measures are
    /// solved on the re-rated chain. No re-composition, no re-refinement.
    ///
    /// `values` gives one value per **declared** parameter, in declaration
    /// order (positive, finite). Evaluating at the declared base values
    /// reproduces [`Session::evaluate`] bitwise: re-rating at the base
    /// recovers the aggregated rates exactly, and the solver path is the
    /// same.
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::Invalid`] if the model declares no
    /// parameters, the arity is wrong, or a value is not positive finite;
    /// otherwise propagates aggregation/analysis errors.
    pub fn evaluate_at(
        &self,
        measures: &[Measure],
        values: &[f64],
    ) -> Result<Vec<f64>, ArcadeError> {
        if self.def.params.is_empty() {
            return Err(ArcadeError::invalid(
                "evaluate_at needs declared rate parameters (SystemDef::add_param)",
            ));
        }
        if values.len() != self.def.params.len() {
            return Err(ArcadeError::invalid(format!(
                "expected {} parameter values, got {}",
                self.def.params.len(),
                values.len()
            )));
        }
        for (p, &v) in self.def.params.iter().zip(values) {
            if !v.is_finite() || v <= 0.0 {
                return Err(ArcadeError::invalid(format!(
                    "parameter `{}`: value {v} must be positive and finite",
                    p.name
                )));
            }
        }
        self.evaluate_at_full(measures, values)
    }

    /// Evaluates a measure batch over a whole [`ParamGrid`]: each needed
    /// configuration is aggregated **once** (at the declared base values),
    /// then every grid point re-rates the cached quotient and solves —
    /// points fan out over worker threads
    /// ([`EngineOptions::with_threads`](crate::engine::EngineOptions)),
    /// and every per-point row is bitwise identical to a fresh session's
    /// [`Session::evaluate_at`] at any thread count (each point is solved
    /// by exactly the code the serial path runs). Finite-difference
    /// sensitivities come with cartesian grids ([`SweepResult`]).
    ///
    /// Per-point scratch artifacts (steady vectors, absorbing transforms)
    /// are not recorded in [`SessionStats::steady_solves`] /
    /// [`SessionStats::absorbing_built`]; the solver work itself shows up
    /// in [`SessionStats::dtmc_steps`] / [`SessionStats::sweeps`], and
    /// [`SessionStats::aggregations_built`] stays at one per needed
    /// configuration no matter how many points the grid has.
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::Invalid`] for unknown/duplicate grid
    /// parameter names, ragged explicit points, or non-positive values;
    /// otherwise propagates aggregation/analysis errors.
    pub fn sweep(
        &self,
        measures: &[Measure],
        grid: &ParamGrid,
    ) -> Result<SweepResult, ArcadeError> {
        if self.def.params.is_empty() {
            return Err(ArcadeError::invalid(
                "sweep needs declared rate parameters (SystemDef::add_param)",
            ));
        }
        let mut pids: Vec<usize> = Vec::with_capacity(grid.names().len());
        for n in grid.names() {
            let pid = self
                .def
                .param_index(n)
                .ok_or_else(|| ArcadeError::invalid(format!("unknown parameter `{n}`")))?;
            if pids.contains(&pid) {
                return Err(ArcadeError::invalid(format!(
                    "parameter `{n}` appears twice in the grid"
                )));
            }
            pids.push(pid);
        }
        let points = grid.points();
        let base: Vec<f64> = self.def.params.iter().map(|p| p.base).collect();
        let mut fulls: Vec<Vec<f64>> = Vec::with_capacity(points.len());
        for pt in &points {
            if pt.len() != pids.len() {
                return Err(ArcadeError::invalid(format!(
                    "point {pt:?} has {} values for {} grid parameters",
                    pt.len(),
                    pids.len()
                )));
            }
            let mut full = base.clone();
            for (k, &pid) in pids.iter().enumerate() {
                let v = pt[k];
                if !v.is_finite() || v <= 0.0 {
                    return Err(ArcadeError::invalid(format!(
                        "parameter `{}`: value {v} must be positive and finite",
                        grid.names()[k]
                    )));
                }
                full[pid] = v;
            }
            fulls.push(full);
        }
        // Warm the needed aggregations before fanning out, so the workers
        // never race a cold build and the whole sweep costs exactly one
        // aggregation per configuration.
        self.prefetch(&needed_configs(measures), None)?;
        let threads = ioimc::par::effective_threads(self.opts.threads);
        // Per-point solves honor the caller's ambient budget too: the
        // thread-local is re-installed inside each worker.
        let budget = budget::current();
        let results = ioimc::par::par_map(threads, &fulls, |_, full| {
            // The sweep fan-out boundary: one hit per grid point, on the
            // worker about to solve it. An injected panic propagates
            // through the scoped join and is classified by
            // `sweep_bounded` / the server's per-request ring.
            chaos::failpoint("session.sweep_point");
            budget::scope(budget.clone(), || self.evaluate_at_full(measures, full))
        });
        let mut values = Vec::with_capacity(results.len());
        for r in results {
            values.push(r?);
        }
        let sensitivities = sweep_sensitivities(grid, &values, measures.len());
        Ok(SweepResult {
            names: grid.names().to_vec(),
            points,
            values,
            sensitivities,
        })
    }

    /// Re-rates the cached quotient of `cfg` to the full parameter vector
    /// `full` (one value per declared parameter).
    fn rerated(&self, cfg: Config, full: &[f64]) -> Result<Ctmc, ArcadeError> {
        Ok(self.aggregation(cfg)?.ctmc.rerate(full)?)
    }

    /// The per-point evaluation path shared by [`Session::evaluate_at`]
    /// and [`Session::sweep`]: mirrors [`Session::evaluate_traced`]'s
    /// batching exactly, but on freshly re-rated chains instead of the
    /// per-configuration memo — so a point at the declared base values
    /// reproduces the memoized path bitwise.
    fn evaluate_at_full(
        &self,
        measures: &[Measure],
        full: &[f64],
    ) -> Result<Vec<f64>, ArcadeError> {
        let mut unavail_ts = Vec::new();
        let mut fp_repair_ts = Vec::new();
        let mut fp_norepair_ts = Vec::new();
        let mut needs_avail = false;
        for m in measures {
            match m {
                Measure::PointAvailability(t) | Measure::PointUnavailability(t) => {
                    unavail_ts.push(*t);
                    needs_avail = true;
                }
                Measure::UnreliabilityWithRepair(t) => {
                    fp_repair_ts.push(*t);
                    needs_avail = true;
                }
                Measure::Reliability(t) | Measure::Unreliability(t) => {
                    fp_norepair_ts.push(*t);
                }
                _ => needs_avail = true,
            }
        }
        let mut need: Vec<Config> = Vec::new();
        if needs_avail {
            need.push(Config::Availability);
        }
        if !fp_norepair_ts.is_empty() {
            need.push(Config::NoRepair);
        }
        self.prefetch(&need, None)?;

        let avail = if needs_avail {
            Some(self.rerated(Config::Availability, full)?)
        } else {
            None
        };
        let norepair = if fp_norepair_ts.is_empty() {
            None
        } else {
            Some(self.rerated(Config::NoRepair, full)?)
        };
        let avail_chain = || avail.as_ref().expect("availability chain was re-rated");
        let avail_down: Vec<u32> = avail
            .as_ref()
            .map(|c| c.states_with_label(DOWN_BIT).collect())
            .unwrap_or_default();

        let needs_steady = measures.iter().any(|m| {
            matches!(
                m,
                Measure::SteadyStateAvailability | Measure::SteadyStateUnavailability
            )
        });
        let steady_down = if needs_steady {
            let pi = ctmc::steady::steady_state_with(avail_chain(), &self.opts.solver);
            Some(mass(&avail_down, &pi))
        } else {
            None
        };
        let mttf = if measures.iter().any(|m| matches!(m, Measure::Mttf)) {
            Some(if avail_down.is_empty() {
                f64::INFINITY
            } else {
                ctmc::absorbing::mean_time_to_absorption_with(
                    avail_chain(),
                    &avail_down,
                    &self.opts.solver,
                )
            })
        } else {
            None
        };
        let unavail = if unavail_ts.is_empty() {
            Vec::new()
        } else {
            let c = avail_chain();
            transient_many_from_ctx(
                c,
                &c.initial_distribution(),
                &unavail_ts,
                &self.opts.solver.transient,
                &self.ctx,
            )
            .iter()
            .map(|pi| mass(&avail_down, pi))
            .collect()
        };
        let fp_repair = if fp_repair_ts.is_empty() {
            Vec::new()
        } else {
            point_first_passage(
                avail_chain(),
                &avail_down,
                &fp_repair_ts,
                &self.opts.solver.transient,
                &self.ctx,
            )
        };
        let fp_norepair = if fp_norepair_ts.is_empty() {
            Vec::new()
        } else {
            let c = norepair.as_ref().expect("no-repair chain was re-rated");
            let down: Vec<u32> = c.states_with_label(DOWN_BIT).collect();
            point_first_passage(
                c,
                &down,
                &fp_norepair_ts,
                &self.opts.solver.transient,
                &self.ctx,
            )
        };

        let (mut ui, mut ri, mut ni) = (0usize, 0usize, 0usize);
        let mut out = Vec::with_capacity(measures.len());
        for m in measures {
            let v = match m {
                Measure::SteadyStateAvailability => {
                    1.0 - steady_down.expect("steady mass was computed")
                }
                Measure::SteadyStateUnavailability => {
                    steady_down.expect("steady mass was computed")
                }
                Measure::PointAvailability(_) => {
                    ui += 1;
                    1.0 - unavail[ui - 1]
                }
                Measure::PointUnavailability(_) => {
                    ui += 1;
                    unavail[ui - 1]
                }
                Measure::UnreliabilityWithRepair(_) => {
                    ri += 1;
                    fp_repair[ri - 1]
                }
                Measure::Reliability(_) => {
                    ni += 1;
                    1.0 - fp_norepair[ni - 1]
                }
                Measure::Unreliability(_) => {
                    ni += 1;
                    fp_norepair[ni - 1]
                }
                Measure::Mttf => mttf.expect("MTTF was computed"),
                Measure::IntervalAvailability(t) => {
                    1.0 - ctmc::csl::interval_down_fraction_ctx(
                        avail_chain(),
                        &StateFormula::down(),
                        *t,
                        &self.opts.solver.transient,
                        &self.ctx,
                    )
                }
                Measure::BoundedUntil { phi, psi, t } => ctmc::csl::until_bounded_ctx(
                    avail_chain(),
                    phi,
                    psi,
                    *t,
                    &self.opts.solver.transient,
                    &self.ctx,
                ),
            };
            out.push(v);
        }
        Ok(out)
    }
}

/// Internal, thread-shared accumulation cells behind [`EvalTrace`] (the
/// parallel prefetch records from worker threads).
#[derive(Debug, Default)]
struct TraceCells {
    built: AtomicU32,
    waited: AtomicU32,
}

/// The model configurations a measure batch needs: the no-repair
/// configuration for (un)reliability, the availability configuration for
/// everything else — the same rule [`Session::evaluate`] applies while
/// gathering its grids.
fn needed_configs(measures: &[Measure]) -> Vec<Config> {
    let mut need = Vec::new();
    if measures
        .iter()
        .any(|m| !matches!(m, Measure::Reliability(_) | Measure::Unreliability(_)))
    {
        need.push(Config::Availability);
    }
    if measures
        .iter()
        .any(|m| matches!(m, Measure::Reliability(_) | Measure::Unreliability(_)))
    {
        need.push(Config::NoRepair);
    }
    need
}

/// First-passage probabilities over a grid for one sweep point: an
/// absorbing transform on the re-rated chain, one batched sweep. The
/// per-point transform is sweep scratch, not a session artifact, so it is
/// not recorded in [`SessionStats::absorbing_built`].
fn point_first_passage(
    ctmc: &Ctmc,
    down: &[u32],
    ts: &[f64],
    opts: &TransientOptions,
    ctx: &MeasureContext,
) -> Vec<f64> {
    if down.is_empty() {
        return vec![0.0; ts.len()];
    }
    let absorbing = ctmc.make_absorbing(down.iter().copied());
    transient_many_from_ctx(&absorbing, &absorbing.initial_distribution(), ts, opts, ctx)
        .iter()
        .map(|pi| mass(down, pi))
        .collect()
}

/// Central-difference sensitivities over a cartesian grid: for point `i`,
/// measure `j`, and grid axis `k`, the slope between the two grid
/// neighbours along axis `k` — one-sided at the axis edges, `None` when
/// the axis has fewer than two distinct values or the grid is an explicit
/// point list (no neighbour structure to difference over). Layout:
/// `result[point][measure][axis]`.
fn sweep_sensitivities(
    grid: &ParamGrid,
    values: &[Vec<f64>],
    num_measures: usize,
) -> Vec<Vec<Vec<Option<f64>>>> {
    let GridKind::Cartesian(axes) = &grid.kind else {
        return values
            .iter()
            .map(|_| vec![vec![None; grid.names().len()]; num_measures])
            .collect();
    };
    let lens: Vec<usize> = axes.iter().map(Vec::len).collect();
    // Row-major strides: the last axis varies fastest, matching
    // `ParamGrid::points`.
    let mut strides = vec![1usize; lens.len()];
    for k in (0..lens.len().saturating_sub(1)).rev() {
        strides[k] = strides[k + 1] * lens[k + 1];
    }
    (0..values.len())
        .map(|i| {
            (0..num_measures)
                .map(|j| {
                    (0..lens.len())
                        .map(|k| {
                            if lens[k] < 2 {
                                return None;
                            }
                            let ik = (i / strides[k]) % lens[k];
                            let lo = ik.saturating_sub(1);
                            let hi = (ik + 1).min(lens[k] - 1);
                            let dx = axes[k][hi] - axes[k][lo];
                            if dx == 0.0 {
                                return None;
                            }
                            let i_lo = i - (ik - lo) * strides[k];
                            let i_hi = i + (hi - ik) * strides[k];
                            Some((values[i_hi][j] - values[i_lo][j]) / dx)
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Elaborates `def` and runs compositional aggregation — the unit of work
/// a configuration build costs, shared by the lazy and parallel paths.
fn build_aggregation(def: &SystemDef, opts: &EngineOptions) -> Result<Aggregation, ArcadeError> {
    let model = SystemModel::build(def)?;
    aggregate(&model, opts)
}

/// Runs `f`, converting any panic into a structured [`ArcadeError`] via
/// [`classify_panic`] (with the ambient budget consulted for trips whose
/// typed payload did not survive a scoped-thread join).
fn catch_eval<R>(f: impl FnOnce() -> Result<R, ArcadeError>) -> Result<R, ArcadeError> {
    match std::panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => Err(classify_panic(
            payload.as_ref(),
            budget::current().as_deref(),
        )),
    }
}

/// Classifies a caught panic payload: a [`BudgetExceeded`] payload (or a
/// trip recorded on `budget` — scoped-thread joins may swallow the typed
/// payload) becomes [`ArcadeError::Budget`]; anything else becomes
/// [`ArcadeError::Internal`] carrying the panic message.
pub(crate) fn classify_panic(
    payload: &(dyn std::any::Any + Send),
    budget: Option<&Budget>,
) -> ArcadeError {
    if let Some(e) = payload.downcast_ref::<BudgetExceeded>() {
        return ArcadeError::Budget(*e);
    }
    if let Some(e) = budget.and_then(Budget::tripped) {
        return ArcadeError::Budget(e);
    }
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    };
    ArcadeError::Internal(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BcDef, RepairStrategy, RuDef};
    use crate::dist::Dist;
    use crate::expr::Expr;

    fn pair() -> SystemDef {
        let mut def = SystemDef::new("pair");
        def.add_component(BcDef::new("a", Dist::exp(0.01), Dist::exp(1.0)));
        def.add_component(BcDef::new("b", Dist::exp(0.02), Dist::exp(2.0)));
        def.add_repair_unit(RuDef::new("ra", ["a"], RepairStrategy::Dedicated));
        def.add_repair_unit(RuDef::new("rb", ["b"], RepairStrategy::Dedicated));
        def.set_system_down(Expr::or([Expr::down("a"), Expr::down("b")]));
        def
    }

    #[test]
    fn session_is_lazy_per_configuration() {
        let session = Session::new(&pair()).unwrap();
        assert_eq!(session.stats().aggregations_built, 0);
        let _ = session
            .evaluate(&[
                Measure::SteadyStateAvailability,
                Measure::PointAvailability(5.0),
                Measure::Mttf,
            ])
            .unwrap();
        // Only the availability configuration was needed.
        assert_eq!(session.stats().aggregations_built, 1);
        let _ = session.value(&Measure::Reliability(5.0)).unwrap();
        assert_eq!(session.stats().aggregations_built, 2);
        // Repeat queries rebuild nothing.
        let _ = session
            .evaluate(&[Measure::Reliability(7.0), Measure::Mttf])
            .unwrap();
        assert_eq!(session.stats().aggregations_built, 2);
        assert_eq!(session.stats().steady_solves, 1);
        assert_eq!(session.stats().absorbing_built, 1);
    }

    #[test]
    fn batch_matches_singletons() {
        let session = Session::new(&pair()).unwrap();
        let batch = [
            Measure::SteadyStateUnavailability,
            Measure::PointUnavailability(3.0),
            Measure::Reliability(3.0),
            Measure::UnreliabilityWithRepair(3.0),
            Measure::Mttf,
        ];
        let values = session.evaluate(&batch).unwrap();
        let fresh = Session::new(&pair()).unwrap();
        for (m, &v) in batch.iter().zip(&values) {
            let single = fresh.value(m).unwrap();
            assert!(
                (single - v).abs() < 1e-12,
                "{m:?}: batch {v} vs single {single}"
            );
        }
    }

    #[test]
    fn closed_forms_hold() {
        let session = Session::new(&pair()).unwrap();
        // independent dedicated repair: A = Π µ/(λ+µ)
        let a = session.value(&Measure::SteadyStateAvailability).unwrap();
        let expected = (1.0 / 1.01) * (2.0 / 2.02);
        assert!((a - expected).abs() < 1e-10, "{a} vs {expected}");
        // series system, no repair: R(t) = e^{-(λ1+λ2)t}
        let t = 7.0;
        let r = session.value(&Measure::Reliability(t)).unwrap();
        assert!((r - (-0.03f64 * t).exp()).abs() < 1e-9);
        // complementarity inside one batch
        let v = session
            .evaluate(&[
                Measure::PointAvailability(t),
                Measure::PointUnavailability(t),
                Measure::Unreliability(t),
                Measure::Reliability(t),
            ])
            .unwrap();
        assert!((v[0] + v[1] - 1.0).abs() < 1e-12);
        assert!((v[2] + v[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_prefetch_matches_lazy_sequential() {
        // A batch that needs both configurations on a fresh session takes
        // the concurrent prefetch path; a session with threads=1 takes
        // the lazy sequential path. Values must agree bitwise.
        let batch = [
            Measure::SteadyStateAvailability,
            Measure::PointUnavailability(5.0),
            Measure::Reliability(5.0),
            Measure::UnreliabilityWithRepair(5.0),
            Measure::Mttf,
        ];
        let par = Session::new(&pair()).unwrap();
        let par_values = par.evaluate(&batch).unwrap();
        assert_eq!(par.stats().aggregations_built, 2);
        let seq = Session::new(&pair())
            .unwrap()
            .with_options(crate::engine::EngineOptions::new().with_threads(1));
        let seq_values = seq.evaluate(&batch).unwrap();
        for (m, (p, s)) in batch.iter().zip(par_values.iter().zip(&seq_values)) {
            assert_eq!(p.to_bits(), s.to_bits(), "{m:?}: {p} vs {s}");
        }
        // prefetch_all on an already-warm session is a no-op.
        par.prefetch_all().unwrap();
        assert_eq!(par.stats().aggregations_built, 2);
    }

    #[test]
    fn missing_system_down_rejected() {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("a", Dist::exp(0.01), Dist::exp(1.0)));
        assert!(Session::new(&def).is_err());
    }

    /// A uniform grid steps by one `Λ·Δt`, so the session's Poisson memo
    /// answers every segment after the first — and a repeated batch
    /// recomputes no weight vector at all.
    #[test]
    fn uniform_grid_reuses_poisson_weights() {
        let mut opts = crate::engine::EngineOptions::new();
        opts.solver.transient.steady_tol = 0.0; // keep every segment stepping
        let session = Session::new(&pair()).unwrap().with_options(opts);
        let batch: Vec<Measure> = (1..=6)
            .map(|k| Measure::PointUnavailability(f64::from(k) * 10.0))
            .collect();
        let _ = session.evaluate(&batch).unwrap();
        let first = session.stats();
        assert!(first.poisson_hits >= 4, "{first:?}");
        let _ = session.evaluate(&batch).unwrap();
        let second = session.stats();
        assert!(second.poisson_hits > first.poisson_hits, "{second:?}");
        assert_eq!(second.poisson_misses, first.poisson_misses, "{second:?}");
    }

    #[test]
    fn csl_measures_route_through_the_session() {
        let session = Session::new(&pair()).unwrap();
        let t = 10.0;
        let until = session
            .value(&Measure::BoundedUntil {
                phi: StateFormula::up(),
                psi: StateFormula::down(),
                t,
            })
            .unwrap();
        let fp = session.value(&Measure::UnreliabilityWithRepair(t)).unwrap();
        assert!((until - fp).abs() < 1e-12);
        let ia = session.value(&Measure::IntervalAvailability(t)).unwrap();
        let pa = session.value(&Measure::PointAvailability(t)).unwrap();
        assert!(ia <= 1.0 && ia >= pa - 1e-9);
    }

    /// The [`pair`] system with the failure rate of `a` and the repair
    /// rate of `b` declared as sweep parameters (at their concrete values
    /// as bases).
    fn param_pair() -> SystemDef {
        let mut def = pair();
        def.add_param("lambda_a", 0.01).add_param("mu_b", 2.0);
        def
    }

    #[test]
    fn evaluate_at_base_reproduces_evaluate_bitwise() {
        let def = param_pair();
        let session = Session::new(&def).unwrap();
        let measures = [
            Measure::SteadyStateAvailability,
            Measure::PointUnavailability(5.0),
            Measure::UnreliabilityWithRepair(5.0),
            Measure::Unreliability(5.0),
            Measure::Mttf,
            Measure::IntervalAvailability(5.0),
        ];
        let memo = session.evaluate(&measures).unwrap();
        let at = session.evaluate_at(&measures, &[0.01, 2.0]).unwrap();
        for (m, (a, b)) in measures.iter().zip(memo.iter().zip(&at)) {
            assert_eq!(a.to_bits(), b.to_bits(), "{m:?}: memo {a} vs at-base {b}");
        }
    }

    #[test]
    fn sweep_is_one_aggregation_and_matches_fresh_points_bitwise() {
        let def = param_pair();
        let session = Session::new(&def).unwrap();
        let measures = [
            Measure::SteadyStateUnavailability,
            Measure::Unreliability(4.0),
            Measure::Mttf,
        ];
        let grid = ParamGrid::cartesian([
            ("lambda_a", vec![0.005, 0.01, 0.02]),
            ("mu_b", vec![1.0, 2.0]),
        ]);
        let result = session.sweep(&measures, &grid).unwrap();
        assert_eq!(result.points.len(), 6);
        assert_eq!(result.values.len(), 6);
        // Both configurations were needed; each was aggregated exactly
        // once for the entire grid.
        assert_eq!(session.stats().aggregations_built, 2);
        // Grid names match the declared parameter order here, so a point
        // is already a full parameter vector.
        for (pt, row) in result.points.iter().zip(&result.values) {
            let fresh = Session::new(&def).unwrap();
            let vals = fresh.evaluate_at(&measures, pt).unwrap();
            for (m, (a, b)) in measures.iter().zip(vals.iter().zip(row)) {
                assert_eq!(a.to_bits(), b.to_bits(), "{m:?} at {pt:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn cartesian_sensitivities_are_finite_differences() {
        let session = Session::new(&param_pair()).unwrap();
        let axis = vec![0.005, 0.01, 0.02];
        let grid = ParamGrid::cartesian([("lambda_a", axis.clone())]);
        let r = session
            .sweep(&[Measure::SteadyStateUnavailability], &grid)
            .unwrap();
        // One swept axis per point/measure, even though two parameters
        // are declared.
        assert_eq!(r.sensitivities[1][0].len(), 1);
        let central = (r.values[2][0] - r.values[0][0]) / (axis[2] - axis[0]);
        assert_eq!(
            r.sensitivities[1][0][0].unwrap().to_bits(),
            central.to_bits()
        );
        let left = (r.values[1][0] - r.values[0][0]) / (axis[1] - axis[0]);
        assert_eq!(r.sensitivities[0][0][0].unwrap().to_bits(), left.to_bits());
        // A higher failure rate means more steady-state unavailability.
        assert!(central > 0.0);
        // Explicit point lists carry no neighbour structure: no slopes.
        let list = ParamGrid::points_list(["lambda_a"], vec![vec![0.005], vec![0.02]]);
        let r = session
            .sweep(&[Measure::SteadyStateUnavailability], &list)
            .unwrap();
        assert!(r
            .sensitivities
            .iter()
            .flatten()
            .flatten()
            .all(Option::is_none));
    }

    #[test]
    fn sweep_and_evaluate_at_validate_inputs() {
        let plain = Session::new(&pair()).unwrap();
        assert!(plain.evaluate_at(&[Measure::Mttf], &[0.01]).is_err());
        let session = Session::new(&param_pair()).unwrap();
        // wrong arity, non-positive value
        assert!(session.evaluate_at(&[Measure::Mttf], &[0.01]).is_err());
        assert!(session
            .evaluate_at(&[Measure::Mttf], &[0.01, -1.0])
            .is_err());
        // unknown and duplicate grid parameters
        let unknown = ParamGrid::cartesian([("nope", vec![1.0])]);
        assert!(session.sweep(&[Measure::Mttf], &unknown).is_err());
        let dup = ParamGrid::points_list(["lambda_a", "lambda_a"], vec![vec![0.01, 0.01]]);
        assert!(session.sweep(&[Measure::Mttf], &dup).is_err());
        // ragged explicit point
        let ragged = ParamGrid::points_list(["lambda_a"], vec![vec![0.01, 0.02]]);
        assert!(session.sweep(&[Measure::Mttf], &ragged).is_err());
    }

    #[test]
    fn solver_counters_are_per_session() {
        let a = Session::new(&pair()).unwrap();
        let b = Session::new(&pair()).unwrap();
        let _ = a.value(&Measure::PointUnavailability(5.0)).unwrap();
        assert!(a.stats().dtmc_steps > 0);
        assert!(a.stats().sweeps > 0);
        assert_eq!(b.stats().dtmc_steps, 0, "sessions must not share counters");
        assert_eq!(b.stats().sweeps, 0);
    }
}
