//! Fault-injection failpoints for exercising the server's containment.
//!
//! A *failpoint* is a named hook compiled into a hot boundary of the
//! resident analysis stack. When the registry is disarmed — the default —
//! hitting one costs a single relaxed atomic load and nothing else; armed,
//! it performs the configured fault:
//!
//! | action       | effect at the failpoint                                  |
//! |--------------|----------------------------------------------------------|
//! | `panic`      | panics (`"chaos: injected panic at <point>"`)            |
//! | `delay(ms)`  | sleeps `ms` in short slices, honouring any ambient       |
//! |              | [`ioimc::budget`] deadline (the sleep aborts early by    |
//! |              | panicking with [`BudgetExceeded`], exactly like a slow   |
//! |              | solver would)                                            |
//! | `torn`       | returns [`Fired::Torn`]; the caller emulates a torn      |
//! |              | write (partial output, dropped connection)               |
//!
//! [`BudgetExceeded`]: ioimc::budget::BudgetExceeded
//!
//! Compiled-in failpoints ([`POINTS`]):
//!
//! * `serve.build` — inside the server registry's session builder,
//! * `session.agg` — inside [`crate::query::Session`]'s aggregation build,
//! * `session.solve` — before a session's numerical solve,
//! * `session.shard` — at the solver-shard partition boundary inside
//!   `ctmc::transient` (reached through the [`ioimc::failpoint`] hook,
//!   since `ctmc` sits below this crate in the dependency graph),
//! * `session.sweep_point` — at the per-point fan-out boundary of
//!   [`crate::query::Session::sweep`],
//! * `serve.respond` — before a response line is written to the socket.
//!
//! Arm the registry programmatically ([`arm`]) from tests and benches, via
//! the `ARCADE_CHAOS` environment variable, or with `arcaded --chaos`.
//! The spec syntax is a comma-separated list of
//! `point=action[*count]` clauses:
//!
//! ```text
//! ARCADE_CHAOS='serve.build=panic*1,session.solve=delay(200)'
//! ```
//!
//! `*count` limits the fault to the first `count` hits, after which the
//! failpoint disarms itself; without it the fault fires on every hit.
//! [`arm_spec`] validates the **whole** spec before arming anything: a
//! malformed clause or an unknown failpoint name is a structured
//! [`ChaosSpecError`] and leaves the registry untouched — a typo can
//! never silently arm nothing (or half of a spec).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Every failpoint compiled into the stack. [`arm_spec`] rejects names
/// outside this list — an armed point nothing ever hits is
/// indistinguishable from chaos silently off, which is exactly the bug
/// class spec validation exists to catch.
pub const POINTS: &[&str] = &[
    "serve.build",
    "session.agg",
    "session.solve",
    "session.shard",
    "session.sweep_point",
    "serve.respond",
];

/// A structured chaos-spec parse error: which clause failed and why.
/// Rejecting beats ignoring — a daemon or bench started with a malformed
/// `ARCADE_CHAOS`/`--chaos` spec would otherwise run *without* the faults
/// the operator asked for and report misleading results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSpecError {
    /// The offending clause, verbatim (`None` when the whole spec is
    /// empty).
    pub clause: Option<String>,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for ChaosSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.clause {
            Some(c) => write!(f, "chaos clause `{c}`: {}", self.reason),
            None => write!(f, "chaos spec: {}", self.reason),
        }
    }
}

impl std::error::Error for ChaosSpecError {}

impl ChaosSpecError {
    fn new(clause: impl Into<String>, reason: impl Into<String>) -> Self {
        Self {
            clause: Some(clause.into()),
            reason: reason.into(),
        }
    }
}

/// What an armed failpoint does when hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Panic at the failpoint.
    Panic,
    /// Sleep this many milliseconds (sliced, ambient-deadline-aware).
    Delay(u64),
    /// Signal the caller to tear its write ([`Fired::Torn`]).
    Torn,
}

/// What [`failpoint`] asks the caller to do. `Panic` and `Delay` are
/// executed inside [`failpoint`] itself; only faults that need caller
/// cooperation surface here.
/// Callers at points armed only with `panic`/`delay` faults may ignore
/// the return value; `torn` needs caller cooperation, so the one point
/// that supports it (`serve.respond`) matches on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fired {
    /// No fault (registry disarmed, or this point not armed).
    None,
    /// Emulate a torn write: emit partial output and drop the connection.
    Torn,
}

struct Plan {
    action: Action,
    /// Remaining hits; `None` = unlimited.
    remaining: Option<u32>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Option<HashMap<String, Plan>>> = Mutex::new(None);

/// Whether any failpoint is armed. One relaxed load — this is the entire
/// cost of a failpoint on the production path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The bridge installed into [`ioimc::failpoint`]: lower crates (`ctmc`'s
/// solver-shard boundary) call their ambient hook, which lands here and
/// runs the same registry lookup every in-crate failpoint runs. `Torn` is
/// meaningless below the wire layer and is ignored.
fn ioimc_hook(point: &str) {
    let _ = failpoint(point);
}

/// Arms `point` with `action`, firing at most `count` times
/// (`None` = every hit). Replaces any previous plan for the point.
///
/// This programmatic entry point accepts any point name (tests fault
/// their own ad-hoc points); only the spec parser ([`arm_spec`])
/// validates names against [`POINTS`].
pub fn arm(point: &str, action: Action, count: Option<u32>) {
    let mut reg = REGISTRY.lock().unwrap();
    reg.get_or_insert_with(HashMap::new).insert(
        point.to_string(),
        Plan {
            action,
            remaining: count,
        },
    );
    ENABLED.store(true, Ordering::Relaxed);
    // Failpoints compiled into crates below this one reach the registry
    // through the ambient hook; keep its armed flag in lockstep.
    ioimc::failpoint::install(ioimc_hook);
    ioimc::failpoint::set_armed(true);
}

/// Disarms every failpoint, restoring the zero-cost path.
pub fn disarm_all() {
    let mut reg = REGISTRY.lock().unwrap();
    *reg = None;
    ENABLED.store(false, Ordering::Relaxed);
    ioimc::failpoint::set_armed(false);
}

/// Parses one `point=action[*count]` clause (already trimmed, non-empty).
fn parse_clause(clause: &str) -> Result<(String, Action, Option<u32>), ChaosSpecError> {
    let (point, rhs) = clause
        .split_once('=')
        .ok_or_else(|| ChaosSpecError::new(clause, "missing `=` (want point=action[*count])"))?;
    let point = point.trim();
    if !POINTS.contains(&point) {
        return Err(ChaosSpecError::new(
            clause,
            format!(
                "unknown failpoint `{point}` (compiled-in points: {})",
                POINTS.join(", ")
            ),
        ));
    }
    let (action_str, count) = match rhs.split_once('*') {
        Some((a, n)) => {
            let n: u32 = n
                .trim()
                .parse()
                .map_err(|_| ChaosSpecError::new(clause, format!("bad count `{}`", n.trim())))?;
            (a.trim(), Some(n))
        }
        None => (rhs.trim(), None),
    };
    let action = if action_str == "panic" {
        Action::Panic
    } else if action_str == "torn" {
        Action::Torn
    } else if let Some(ms) = action_str
        .strip_prefix("delay(")
        .and_then(|r| r.strip_suffix(')'))
    {
        Action::Delay(
            ms.trim()
                .parse()
                .map_err(|_| ChaosSpecError::new(clause, format!("bad delay `{}`", ms.trim())))?,
        )
    } else {
        return Err(ChaosSpecError::new(
            clause,
            format!("unknown action `{action_str}` (want panic, delay(ms) or torn)"),
        ));
    };
    Ok((point.to_string(), action, count))
}

/// Parses and arms a `point=action[*count],...` spec. See the module docs
/// for the grammar. The **entire** spec is validated first — on any
/// error nothing is armed, so a typo can never half-arm a fault plan.
///
/// # Errors
///
/// A structured [`ChaosSpecError`] naming the clause and the reason: an
/// empty spec, a malformed clause, an unknown action, or a failpoint name
/// outside [`POINTS`].
pub fn arm_spec(spec: &str) -> Result<(), ChaosSpecError> {
    let clauses: Vec<&str> = spec
        .split(',')
        .map(str::trim)
        .filter(|c| !c.is_empty())
        .collect();
    if clauses.is_empty() {
        return Err(ChaosSpecError {
            clause: None,
            reason: "empty spec arms nothing — remove it or name a failpoint".to_string(),
        });
    }
    let plans: Vec<(String, Action, Option<u32>)> = clauses
        .into_iter()
        .map(parse_clause)
        .collect::<Result<_, _>>()?;
    for (point, action, count) in plans {
        arm(&point, action, count);
    }
    Ok(())
}

/// Arms failpoints from the `ARCADE_CHAOS` environment variable, if set.
/// Called once by the server binary. Returns whether anything was armed.
///
/// # Errors
///
/// A malformed spec is a startup error: the daemon refuses to run rather
/// than silently running *without* the faults the operator asked for
/// (misleading chaos results are worse than no daemon).
pub fn init_from_env() -> Result<bool, ChaosSpecError> {
    match std::env::var("ARCADE_CHAOS") {
        Ok(spec) => {
            arm_spec(&spec)?;
            Ok(true)
        }
        Err(_) => Ok(false),
    }
}

/// Serializes tests (and smoke binaries' phases) that arm the
/// process-global registry, so concurrently running `#[test]`s cannot see
/// each other's faults. Recovers from a poisoned lock — a panicking chaos
/// test is the expected case.
#[doc(hidden)]
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The failpoint hook. Disarmed: one atomic load, returns [`Fired::None`].
/// Armed for `point`: performs the fault (see module docs) — `panic`
/// unwinds from here, `delay` sleeps here, `torn` is returned for the
/// caller to act on.
#[inline]
pub fn failpoint(point: &str) -> Fired {
    if !enabled() {
        return Fired::None;
    }
    failpoint_armed(point)
}

#[cold]
fn failpoint_armed(point: &str) -> Fired {
    let action = {
        let mut reg = REGISTRY.lock().unwrap();
        let Some(map) = reg.as_mut() else {
            return Fired::None;
        };
        let Some(plan) = map.get_mut(point) else {
            return Fired::None;
        };
        match &mut plan.remaining {
            Some(0) => return Fired::None,
            Some(n) => *n -= 1,
            None => {}
        }
        plan.action
    };
    match action {
        Action::Panic => panic!("chaos: injected panic at {point}"),
        Action::Delay(ms) => {
            sliced_sleep(ms);
            Fired::None
        }
        Action::Torn => Fired::Torn,
    }
}

/// Sleeps `ms` milliseconds in ≤10 ms slices, polling the ambient compute
/// budget between slices — an injected delay behaves exactly like a slow
/// solver loop, so a request deadline still aborts it promptly.
fn sliced_sleep(ms: u64) {
    let mut left = ms;
    while left > 0 {
        ioimc::budget::checkpoint();
        let slice = left.min(10);
        std::thread::sleep(Duration::from_millis(slice));
        left -= slice;
    }
    ioimc::budget::checkpoint();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so these tests serialize themselves
    // behind the shared lock and always disarm on exit.
    fn locked() -> std::sync::MutexGuard<'static, ()> {
        test_lock()
    }

    #[test]
    fn disarmed_is_inert() {
        let _g = locked();
        disarm_all();
        assert!(!enabled());
        assert_eq!(failpoint("serve.build"), Fired::None);
    }

    #[test]
    fn count_limits_fires() {
        let _g = locked();
        disarm_all();
        arm("p", Action::Torn, Some(2));
        assert_eq!(failpoint("p"), Fired::Torn);
        assert_eq!(failpoint("p"), Fired::Torn);
        assert_eq!(failpoint("p"), Fired::None);
        disarm_all();
    }

    #[test]
    fn panic_action_panics_with_point_name() {
        let _g = locked();
        disarm_all();
        arm("session.agg", Action::Panic, Some(1));
        let r = std::panic::catch_unwind(|| failpoint("session.agg"));
        disarm_all();
        let payload = r.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("session.agg"), "payload: {msg}");
        // The count was consumed by the panicking hit.
        assert_eq!(failpoint("session.agg"), Fired::None);
    }

    #[test]
    fn spec_round_trip() {
        let _g = locked();
        disarm_all();
        arm_spec("serve.build=panic*1, session.solve=delay(5), serve.respond=torn").unwrap();
        assert!(enabled());
        assert_eq!(failpoint("session.solve"), Fired::None); // slept 5ms
        assert_eq!(failpoint("serve.respond"), Fired::Torn);
        disarm_all();

        assert!(arm_spec("nonsense").is_err());
        assert!(arm_spec("serve.build=explode").is_err());
        assert!(arm_spec("serve.build=delay(x)").is_err());
        assert!(arm_spec("serve.build=panic*x").is_err());
        assert!(!enabled());
    }

    #[test]
    fn empty_spec_is_a_structured_error() {
        let _g = locked();
        disarm_all();
        for spec in ["", "   ", ",", " , ,"] {
            let e = arm_spec(spec).expect_err("empty spec must be rejected");
            assert!(e.clause.is_none(), "spec {spec:?}: {e}");
            assert!(e.reason.contains("empty"), "spec {spec:?}: {e}");
        }
        assert!(!enabled(), "a rejected spec must arm nothing");
    }

    #[test]
    fn unknown_failpoint_names_are_rejected() {
        let _g = locked();
        disarm_all();
        let e = arm_spec("serve.bulid=panic").expect_err("typo'd point must be rejected");
        assert_eq!(e.clause.as_deref(), Some("serve.bulid=panic"));
        assert!(e.reason.contains("unknown failpoint"), "{e}");
        assert!(
            e.reason.contains("serve.build"),
            "error must list valid points: {e}"
        );
        assert!(!enabled(), "a typo'd spec must arm nothing");
    }

    #[test]
    fn garbage_specs_are_rejected_without_half_arming() {
        let _g = locked();
        disarm_all();
        // The first clause is valid; the second is garbage. Nothing may
        // be armed — partial arming is the silent failure mode the
        // two-phase parse exists to prevent.
        let e = arm_spec("serve.build=panic, =;!garbage").expect_err("garbage must be rejected");
        assert!(e.clause.is_some(), "{e}");
        assert!(!enabled(), "a rejected spec must not half-arm");
        assert_eq!(failpoint("serve.build"), Fired::None);

        for spec in ["===", "serve.build", "serve.build=", "serve.build=panic*"] {
            assert!(arm_spec(spec).is_err(), "spec {spec:?} must be rejected");
        }
        assert!(!enabled());
    }

    #[test]
    fn new_points_are_armable_and_display_is_structured() {
        let _g = locked();
        disarm_all();
        arm_spec("session.shard=panic*1, session.sweep_point=delay(1)").unwrap();
        assert!(enabled());
        assert!(
            ioimc::failpoint::armed(),
            "ambient hook flag must arm in lockstep"
        );
        disarm_all();
        assert!(
            !ioimc::failpoint::armed(),
            "ambient hook flag must disarm too"
        );
        let e = arm_spec("session.shard=boom").unwrap_err();
        assert!(e.to_string().contains("session.shard=boom"), "{e}");
    }

    #[test]
    fn delay_honours_ambient_deadline() {
        let _g = locked();
        disarm_all();
        arm("slow", Action::Delay(60_000), None);
        let budget = std::sync::Arc::new(
            ioimc::budget::Budget::unlimited().with_deadline(Duration::from_millis(30)),
        );
        let t0 = std::time::Instant::now();
        let r =
            std::panic::catch_unwind(|| ioimc::budget::scope(Some(budget), || failpoint("slow")));
        disarm_all();
        assert!(r.is_err(), "deadline should abort the injected delay");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "delay must abort near the deadline, not run to completion"
        );
    }
}
