//! Phase-type distributions for times to failure and repair.
//!
//! The paper allows "in general, any phase-type distribution" (§3.5.1); the
//! concrete case studies use exponential and Erlang distributions. We
//! support the acyclic chain subclass — exponential, Erlang, and general
//! hypo-exponential — whose phases embed directly into the I/O-IMC as a
//! sequence of Markovian transitions with a **deterministic start phase**.
//! (Distributions with a probabilistic initial phase vector, e.g.
//! hyper-exponential, would require immediate probabilistic branching,
//! which I/O-IMCs do not have; the multi-failure-mode mechanism of Fig. 4
//! covers the common use of such branching.)
//!
//! Because operational-mode switches preserve the current phase and only
//! swap rates (§3.1.2), all distributions attached to the operational
//! states of one component must have the same number of phases.

use std::fmt;

use smallrand::SmallRng;

/// A phase-type distribution from the acyclic-chain subclass.
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// The component never fails/repairs (rate 0); used for `off` modes.
    Never,
    /// Exponential with the given rate.
    Exp(f64),
    /// Erlang: `k` phases, each with the given rate.
    Erlang(u32, f64),
    /// Hypo-exponential: a chain of phases with individual rates.
    Hypo(Vec<f64>),
}

impl Dist {
    /// Exponential distribution with rate `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or not finite (rate 0 yields
    /// [`Dist::Never`]).
    pub fn exp(rate: f64) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "invalid rate {rate}");
        if rate == 0.0 {
            Self::Never
        } else {
            Self::Exp(rate)
        }
    }

    /// Erlang distribution with `k` phases of rate `rate` each.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `rate` is not positive and finite.
    pub fn erlang(k: u32, rate: f64) -> Self {
        assert!(k > 0, "erlang needs at least one phase");
        assert!(rate.is_finite() && rate > 0.0, "invalid rate {rate}");
        Self::Erlang(k, rate)
    }

    /// Hypo-exponential chain with the given phase rates.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is empty or contains a non-positive rate.
    pub fn hypo(rates: impl Into<Vec<f64>>) -> Self {
        let rates = rates.into();
        assert!(!rates.is_empty(), "hypo-exponential needs phases");
        assert!(
            rates.iter().all(|r| r.is_finite() && *r > 0.0),
            "invalid rate in {rates:?}"
        );
        Self::Hypo(rates)
    }

    /// The chain of phase rates (empty for [`Dist::Never`]).
    pub fn phase_rates(&self) -> Vec<f64> {
        match self {
            Self::Never => Vec::new(),
            Self::Exp(r) => vec![*r],
            Self::Erlang(k, r) => vec![*r; *k as usize],
            Self::Hypo(rs) => rs.clone(),
        }
    }

    /// The distribution with every phase rate passed through `f`,
    /// preserving the shape. Used by [`crate::ast::SystemDef::at_point`]
    /// to substitute parameter values; `f` must return positive finite
    /// rates for the result to be a valid distribution.
    pub fn map_rates(&self, f: impl Fn(f64) -> f64) -> Self {
        match self {
            Self::Never => Self::Never,
            Self::Exp(r) => Self::Exp(f(*r)),
            Self::Erlang(k, r) => Self::Erlang(*k, f(*r)),
            Self::Hypo(rs) => Self::Hypo(rs.iter().map(|&r| f(r)).collect()),
        }
    }

    /// Number of phases (0 for [`Dist::Never`]).
    pub fn num_phases(&self) -> usize {
        match self {
            Self::Never => 0,
            Self::Exp(_) => 1,
            Self::Erlang(k, _) => *k as usize,
            Self::Hypo(rs) => rs.len(),
        }
    }

    /// Expected value (infinite for [`Dist::Never`]).
    pub fn mean(&self) -> f64 {
        match self {
            Self::Never => f64::INFINITY,
            Self::Exp(r) => 1.0 / r,
            Self::Erlang(k, r) => f64::from(*k) / r,
            Self::Hypo(rs) => rs.iter().map(|r| 1.0 / r).sum(),
        }
    }

    /// Cumulative distribution function at `t`.
    pub fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        match self {
            Self::Never => 0.0,
            Self::Exp(r) => 1.0 - (-r * t).exp(),
            Self::Erlang(k, r) => {
                // 1 - e^{-rt} Σ_{i<k} (rt)^i / i!
                let x = r * t;
                let mut term = 1.0;
                let mut sum = 1.0;
                for i in 1..*k {
                    term *= x / f64::from(i);
                    sum += term;
                }
                1.0 - (-x).exp() * sum
            }
            Self::Hypo(rs) => hypo_cdf(rs, t),
        }
    }

    /// Draws a sample using `rng`. Returns `f64::INFINITY` for
    /// [`Dist::Never`].
    pub fn sample(&self, rng: &mut SmallRng) -> f64 {
        match self {
            Self::Never => f64::INFINITY,
            _ => self.phase_rates().iter().map(|&r| rng.exp(r)).sum(),
        }
    }
}

impl fmt::Display for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Never => write!(f, "never"),
            Self::Exp(r) => write!(f, "exp({r})"),
            Self::Erlang(k, r) => write!(f, "erlang({k}, {r})"),
            Self::Hypo(rs) => {
                write!(f, "hypo(")?;
                for (i, r) in rs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{r}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Hypo-exponential CDF via the standard partial-fraction formula when the
/// rates are distinct, falling back to numerically integrating the phase
/// chain (uniformization on the tiny chain) otherwise.
fn hypo_cdf(rates: &[f64], t: f64) -> f64 {
    let distinct = rates
        .iter()
        .enumerate()
        .all(|(i, a)| rates[i + 1..].iter().all(|b| (a - b).abs() > 1e-12 * a));
    if distinct {
        // P(T <= t) = 1 - Σ_i [Π_{j≠i} r_j/(r_j - r_i)] e^{-r_i t}
        let mut p = 1.0;
        for (i, &ri) in rates.iter().enumerate() {
            let mut coeff = 1.0;
            for (j, &rj) in rates.iter().enumerate() {
                if i != j {
                    coeff *= rj / (rj - ri);
                }
            }
            p -= coeff * (-ri * t).exp();
        }
        p.clamp(0.0, 1.0)
    } else {
        // Repeated rates: group into Erlang blocks? Just simulate the chain
        // as a CTMC using its own tiny uniformization.
        chain_absorption_probability(rates, t)
    }
}

/// Probability that a chain of exponential phases completes by `t`,
/// computed by uniformization (exact up to truncation).
fn chain_absorption_probability(rates: &[f64], t: f64) -> f64 {
    let n = rates.len();
    let unif = rates.iter().cloned().fold(0.0, f64::max) * 1.02;
    if unif == 0.0 {
        return 0.0;
    }
    let mut p = vec![0.0f64; n + 1];
    p[0] = 1.0;
    let (left, weights) = crate::dist::poisson_for_dist(unif * t);
    let mut result = 0.0;
    let total = left + weights.len();
    for step in 0..total {
        if step >= left {
            result += weights[step - left] * p[n];
        }
        if step + 1 < total {
            let mut q = vec![0.0f64; n + 1];
            for i in 0..n {
                q[i] += p[i] * (1.0 - rates[i] / unif);
                q[i + 1] += p[i] * rates[i] / unif;
            }
            q[n] += p[n];
            p = q;
        }
    }
    result.clamp(0.0, 1.0)
}

pub(crate) use ctmc::poisson::poisson_weights as poisson_for_dist;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate() {
        assert_eq!(Dist::exp(0.0), Dist::Never);
        assert_eq!(Dist::exp(2.0).num_phases(), 1);
        assert_eq!(Dist::erlang(3, 1.0).num_phases(), 3);
        assert_eq!(Dist::hypo([1.0, 2.0]).num_phases(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn negative_rate_panics() {
        let _ = Dist::exp(-1.0);
    }

    #[test]
    fn means() {
        assert_eq!(Dist::Never.mean(), f64::INFINITY);
        assert!((Dist::exp(4.0).mean() - 0.25).abs() < 1e-12);
        assert!((Dist::erlang(2, 0.1).mean() - 20.0).abs() < 1e-12);
        assert!((Dist::hypo([1.0, 2.0]).mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn exp_cdf() {
        let d = Dist::exp(0.5);
        assert!((d.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(Dist::Never.cdf(1e9), 0.0);
    }

    #[test]
    fn erlang_cdf_matches_hypo_with_equal_rates() {
        let e = Dist::erlang(3, 0.7);
        // hypo with equal rates exercises the uniformization fallback
        let h = Dist::Hypo(vec![0.7, 0.7, 0.7]);
        for &t in &[0.5, 1.0, 5.0, 20.0] {
            assert!(
                (e.cdf(t) - h.cdf(t)).abs() < 1e-9,
                "t={t}: {} vs {}",
                e.cdf(t),
                h.cdf(t)
            );
        }
    }

    #[test]
    fn hypo_cdf_distinct_rates() {
        // X = exp(1) + exp(2): P(X<=t) = 1 - 2e^{-t} + e^{-2t}
        let d = Dist::hypo([1.0, 2.0]);
        for &t in &[0.1, 1.0, 3.0] {
            let expected = 1.0 - 2.0 * f64::exp(-t) + f64::exp(-2.0 * t);
            assert!((d.cdf(t) - expected).abs() < 1e-10);
        }
    }

    #[test]
    fn sample_mean_is_plausible() {
        let d = Dist::erlang(4, 2.0); // mean 2.0
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "sample mean {mean}");
    }

    #[test]
    fn display_round_trip_format() {
        assert_eq!(Dist::exp(0.5).to_string(), "exp(0.5)");
        assert_eq!(Dist::erlang(2, 0.1).to_string(), "erlang(2, 0.1)");
        assert_eq!(Dist::hypo([1.0, 2.0]).to_string(), "hypo(1, 2)");
        assert_eq!(Dist::Never.to_string(), "never");
    }
}
