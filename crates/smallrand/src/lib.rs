//! A tiny, dependency-free, deterministic pseudo-random number generator.
//!
//! The workspace deliberately has no external dependencies, so the
//! Monte-Carlo simulator and the randomized test suites use this generator
//! instead of the `rand` crate. It is a [xoshiro256++][ref] instance seeded
//! through SplitMix64 — fast, well-distributed, and reproducible across
//! platforms, which is all the simulator and the property tests need. It is
//! **not** cryptographically secure.
//!
//! [ref]: https://prng.di.unimi.it/
//!
//! # Example
//!
//! ```
//! use smallrand::SmallRng;
//! let mut rng = SmallRng::seed_from_u64(42);
//! let u = rng.next_f64();
//! assert!((0.0..1.0).contains(&u));
//! let k = rng.below(10);
//! assert!(k < 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A deterministic xoshiro256++ pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64, as
    /// the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`, using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `(0, 1]` — safe to pass to `ln()`.
    pub fn open01(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        lo + self.next_f64() * (hi - lo)
    }

    /// A uniform integer in `[0, n)` (unbiased via rejection).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        // Rejection sampling on the top zone that divides evenly.
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "bad range [{lo}, {hi})");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// A uniform `u32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "bad range [{lo}, {hi})");
        lo + self.below(u64::from(hi - lo)) as u32
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// An exponentially distributed sample with the given rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate.is_finite() && rate > 0.0, "invalid rate {rate}");
        -self.open01().ln() / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_unbiased_over_small_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.below(5) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn exp_sample_mean_matches_rate() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exp(2.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn open01_never_returns_zero_start() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let u = rng.open01();
            assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        let _ = SmallRng::seed_from_u64(1).below(0);
    }
}
