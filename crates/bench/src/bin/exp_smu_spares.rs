//! Experiment: the multi-spare SMU configuration (§3.3, "one primary and
//! two or more spares", which the paper sketches but does not evaluate).
//! Sweeps the number of cold spares behind the DDS primary processor and
//! reports how availability and MTTF improve, with and without a failover
//! delay (§3.6).
//!
//! Run: `cargo run --release -p arcade-bench --bin exp_smu_spares`

use arcade::prelude::*;
use arcade_bench::Table;

fn processors(n_spares: usize, failover: Option<Dist>) -> SystemDef {
    let mut def = SystemDef::new(format!("procs-{n_spares}sp"));
    def.add_component(BcDef::new("pp", Dist::exp(1.0 / 2000.0), Dist::exp(1.0)));
    let mut all = vec!["pp".to_owned()];
    for i in 0..n_spares {
        let name = format!("ps{i}");
        def.add_component(
            BcDef::new(&name, Dist::exp(1.0 / 2000.0), Dist::exp(1.0))
                .with_om_group(OmGroup::ActiveInactive)
                // cold spares: cannot fail while inactive
                .with_ttf([Dist::Never, Dist::exp(1.0 / 2000.0)]),
        );
        all.push(name);
    }
    def.add_repair_unit(RuDef::new("p.rep", all.clone(), RepairStrategy::Fcfs));
    if n_spares > 0 {
        let mut smu = SmuDef::new("p.smu", "pp", all[1..].to_vec());
        if let Some(f) = failover {
            smu = smu.with_failover(f);
        }
        def.add_smu(smu);
    }
    def.set_system_down(Expr::And(all.iter().map(Expr::down).collect()));
    def
}

fn main() {
    let mut table = Table::new(&[
        "spares",
        "failover",
        "unavailability",
        "MTTF (h)",
        "CTMC states",
    ]);
    for n in 0..=3usize {
        for failover in [None, Some(Dist::exp(60.0))] {
            if n == 0 && failover.is_some() {
                continue;
            }
            let def = processors(n, failover.clone());
            let report = Analysis::new(&def).expect("valid").run().expect("analysis");
            table.row(&[
                n.to_string(),
                failover
                    .as_ref()
                    .map_or("instant".to_owned(), ToString::to_string),
                format!("{:.3e}", report.steady_state_unavailability()),
                format!("{:.3e}", report.mttf()),
                report.ctmc_stats().states.to_string(),
            ]);
        }
    }
    println!("cold-spare chain behind the DDS primary (λ = 1/2000 h, µ = 1/h):");
    println!("{}", table.render());
    println!("each spare buys roughly a µ/λ = 2000x MTTF factor; a one-minute");
    println!("failover delay (exp(60/h)) barely dents it because repairs are");
    println!("three orders of magnitude slower than the failover.");
}
