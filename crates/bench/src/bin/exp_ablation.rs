//! Experiments A1 + A2 — ablations of the design choices the paper's
//! approach rests on:
//!
//! * **A1 (reduction strategy)**: branching vs. strong bisimulation on a
//!   2-cluster DDS, plus the no-reduction baseline on a small model (with
//!   no lumping at all, anything larger is intractable — which is itself
//!   the finding).
//! * **A2 (composition order)**: the affinity heuristic vs. declaration
//!   order vs. deliberately reversed order on a two-module model.
//!
//! All configurations must produce the same availability — the ablation
//! varies cost, not correctness.
//!
//! Run: `cargo run --release -p arcade-bench --bin exp_ablation`

use arcade::ast::{BcDef, RepairStrategy, RuDef, SystemDef};
use arcade::build::observer::DOWN_BIT;
use arcade::cases::dds::dds_scaled;
use arcade::dist::Dist;
use arcade::engine::EngineOptions;
use arcade::expr::Expr;
use arcade::order::OrderPolicy;
use arcade_bench::{run_engine, Table};
use bisim::Strategy;
use ctmc::measures;

/// Two independent 2-component modules with shared FCFS repair — small
/// enough for the no-reduction and reversed-order configurations.
fn two_modules() -> SystemDef {
    let mut def = SystemDef::new("two-modules");
    for n in ["a", "b", "c", "d"] {
        def.add_component(BcDef::new(n, Dist::exp(0.01), Dist::exp(1.0)));
    }
    def.add_repair_unit(RuDef::new("rab", ["a", "b"], RepairStrategy::Fcfs));
    def.add_repair_unit(RuDef::new("rcd", ["c", "d"], RepairStrategy::Fcfs));
    def.set_system_down(Expr::or([
        Expr::and([Expr::down("a"), Expr::down("b")]),
        Expr::and([Expr::down("c"), Expr::down("d")]),
    ]));
    def
}

fn main() {
    println!("A1 — reduction strategy:");
    let dds2 = dds_scaled(2);
    let mut t1 = Table::new(&[
        "model",
        "strategy",
        "largest intermediate",
        "final CTMC",
        "unavailability",
    ]);
    let mut dds_ref = None;
    for strategy in [Strategy::Branching, Strategy::Strong] {
        let agg = run_engine(
            &dds2,
            &EngineOptions {
                strategy,
                ..EngineOptions::new()
            },
        )
        .expect("aggregation");
        let u = measures::steady_state_unavailability(&agg.ctmc, DOWN_BIT);
        let r = *dds_ref.get_or_insert(u);
        assert!((u - r).abs() < 1e-10, "{strategy:?} changed the measure");
        t1.row(&[
            "DDS-2cl".into(),
            format!("{strategy:?}"),
            format!(
                "{} st / {} tr",
                agg.largest_intermediate.states,
                agg.largest_intermediate.transitions()
            ),
            format!("{} st", agg.ctmc_stats.states),
            format!("{u:.6e}"),
        ]);
    }
    let small = two_modules();
    let mut small_ref = None;
    for strategy in [Strategy::Branching, Strategy::Strong, Strategy::None] {
        let agg = run_engine(
            &small,
            &EngineOptions {
                strategy,
                ..EngineOptions::new()
            },
        )
        .expect("aggregation");
        let u = measures::steady_state_unavailability(&agg.ctmc, DOWN_BIT);
        let r = *small_ref.get_or_insert(u);
        assert!((u - r).abs() < 1e-10, "{strategy:?} changed the measure");
        t1.row(&[
            "two-modules".into(),
            format!("{strategy:?}"),
            format!(
                "{} st / {} tr",
                agg.largest_intermediate.states,
                agg.largest_intermediate.transitions()
            ),
            format!("{} st", agg.ctmc_stats.states),
            format!("{u:.6e}"),
        ]);
    }
    println!("{}", t1.render());
    println!("(Strategy::None on the 2-cluster DDS is intractable — without lumping");
    println!(" the intermediate product runs away; the paper's motivation for §4.)");
    println!();

    println!("A2 — composition order (branching reduction, two-module model):");
    let mut t2 = Table::new(&[
        "order",
        "largest intermediate",
        "final CTMC",
        "unavailability",
    ]);
    for (name, order) in [
        ("affinity", OrderPolicy::Affinity),
        ("declaration", OrderPolicy::Declaration),
        ("reverse", OrderPolicy::Reverse),
    ] {
        let agg = run_engine(
            &small,
            &EngineOptions {
                order,
                ..EngineOptions::new()
            },
        )
        .expect("aggregation");
        let u = measures::steady_state_unavailability(&agg.ctmc, DOWN_BIT);
        let r = small_ref.expect("set above");
        assert!((u - r).abs() < 1e-10, "order {name} changed the measure");
        t2.row(&[
            name.into(),
            format!(
                "{} st / {} tr",
                agg.largest_intermediate.states,
                agg.largest_intermediate.transitions()
            ),
            format!("{} st", agg.ctmc_stats.states),
            format!("{u:.6e}"),
        ]);
    }
    println!("{}", t2.render());
    println!("all configurations agree on the measure; they differ only in peak cost,");
    println!("which is the paper's argument for compositional aggregation (§4).");
}
