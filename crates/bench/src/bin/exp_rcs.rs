//! Experiments S2 + T2 — regenerates §5.2.2: the RCS module state spaces
//! (pump subsystem and heat-exchanger subsystem CTMCs, largest
//! intermediate I/O-IMC) and the 50-hour unavailability/unreliability.
//!
//! Run: `cargo run --release -p arcade-bench --bin exp_rcs`

use arcade::cases::rcs::rcs;
use arcade::engine::EngineOptions;
use arcade::modular::modular_analysis;
use arcade::sim;
use arcade_bench::Table;

fn main() {
    let def = rcs();
    let t = 50.0;
    let modular = modular_analysis(&def, &EngineOptions::new()).expect("RCS analysis");

    println!("RCS modularization (paper solves the pump subsystem and the heat");
    println!("exchanger subsystem as separate CTMCs):");
    println!();
    let mut table = Table::new(&["module", "components", "CTMC", "largest intermediate"]);
    for m in &modular.modules {
        let is_pump = m.components.iter().any(|c| c == "P1");
        let name = if is_pump {
            "pump subsystem"
        } else {
            "heat-exchanger subsystem"
        };
        table.row(&[
            name.into(),
            m.components.len().to_string(),
            format!(
                "{} st / {} tr",
                m.report.ctmc_stats().states,
                m.report.ctmc_stats().transitions()
            ),
            format!(
                "{} st / {} tr",
                m.report.largest_intermediate().states,
                m.report.largest_intermediate().transitions()
            ),
        ]);
    }
    println!("{}", table.render());
    println!("paper: pump subsystem CTMC 10,404 st / 109,662 tr; HX subsystem 240 st /");
    println!("1,668 tr; largest intermediate 98,056 st / 411,688 tr. (Sizes differ");
    println!("because the exact valve inventory of [7] is not published and our");
    println!("aggregation order/equivalence differ from CADP's; see EXPERIMENTS.md.)");
    println!();

    // The whole 50-hour curve is answered batched: one uniformization
    // sweep per (module, measure kind) instead of one per time point.
    let grid: Vec<f64> = (1..=10).map(|k| t * f64::from(k) / 10.0).collect();
    let unavail_curve = modular.point_unavailability_many(&grid);
    let unrel_curve = modular.unreliability_with_repair_many(&grid);
    println!("50-hour curves (batched, one sweep per module and measure):");
    let mut ctable = Table::new(&["t (h)", "unavailability", "unreliability"]);
    for (i, &tp) in grid.iter().enumerate() {
        ctable.row(&[
            format!("{tp:.0}"),
            format!("{:.5e}", unavail_curve[i]),
            format!("{:.5e}", unrel_curve[i]),
        ]);
    }
    println!("{}", ctable.render());
    println!();

    let unavail = unavail_curve[grid.len() - 1];
    let unrel = unrel_curve[grid.len() - 1];
    let mut mtable = Table::new(&["measure (t = 50 h)", "this work", "paper"]);
    mtable.row(&[
        "unavailability".into(),
        format!("{unavail:.5e}"),
        "6.52100e-10".into(),
    ]);
    mtable.row(&[
        "unreliability".into(),
        format!("{unrel:.5e}"),
        "5.29242e-9".into(),
    ]);
    println!("{}", mtable.render());

    // Cross-check with the Monte-Carlo simulator on a scaled-up variant:
    // the real rates are too rare to simulate, so check the *structure* by
    // inflating every failure rate 1000x and comparing at t = 50 h.
    let mut inflated = def.clone();
    for bc in &mut inflated.components {
        for d in &mut bc.ttf {
            *d = scale_dist(d, 1000.0);
        }
    }
    let exact = modular_analysis(&inflated, &EngineOptions::new())
        .expect("inflated RCS")
        .unreliability_with_repair(t);
    let mc = sim::simulate_unreliability(&inflated, t, 30_000, 52, true).expect("simulation");
    println!(
        "structure cross-check (rates x1000): engine {exact:.4e}, MC {:.4e} ± {:.1e}",
        mc.mean, mc.half_width
    );
    assert!(
        mc.contains(exact),
        "engine value outside MC confidence interval"
    );
    println!("engine value inside the MC 95% interval.");

    let ratio_a = unavail / 6.52100e-10;
    let ratio_r = unrel / 5.29242e-9;
    println!();
    println!(
        "paper ratio: unavailability x{ratio_a:.2}, unreliability x{ratio_r:.2} — the \
         same factor on both measures,"
    );
    println!("consistent with a constant small difference in the per-line component inventory.");
    assert!(
        ratio_a > 0.2 && ratio_a < 5.0,
        "unavailability off by more than 5x"
    );
    assert!(
        ratio_r > 0.2 && ratio_r < 5.0,
        "unreliability off by more than 5x"
    );
}

fn scale_dist(d: &arcade::dist::Dist, f: f64) -> arcade::dist::Dist {
    use arcade::dist::Dist;
    match d {
        Dist::Never => Dist::Never,
        Dist::Exp(r) => Dist::exp(r * f),
        Dist::Erlang(k, r) => Dist::erlang(*k, r * f),
        Dist::Hypo(rs) => Dist::hypo(rs.iter().map(|r| r * f).collect::<Vec<_>>()),
    }
}
