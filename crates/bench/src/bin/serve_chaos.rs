//! `serve_chaos` — fault-injection harness for the in-process `arcaded`
//! server: proves the containment contract of [`arcade::serve`] holds
//! under every injected fault class.
//!
//! ```text
//! serve_chaos [--smoke] [--seed N] [--iters N]
//! ```
//!
//! Boots one server on a loopback ephemeral port, then walks the fault
//! classes with chaos failpoints armed one at a time (see
//! [`arcade::chaos`]):
//!
//! * **A — registry build panic** (`serve.build=panic`): concurrent cold
//!   clients race the same unbuilt model; every client gets an answer
//!   (no hang), at least one sees a typed `internal_panic`, and a retry
//!   rebuilds and succeeds.
//! * **B — aggregation panic** (`session.agg=panic`): a panic inside the
//!   session's build pipeline answers `internal_panic` and clears the
//!   cell; [`Client::expect_ok_retry`] succeeds on the rebuild.
//! * **C — deadline under a slow solve** (`session.solve=delay` +
//!   `timeout_ms`): the injected delay cooperatively observes the
//!   request budget, so the structured `deadline` error lands well
//!   within 2× the requested deadline and the worker is freed; the same
//!   query succeeds once the chaos is disarmed.
//! * **D — torn write** (`serve.respond=torn`): the client sees a
//!   retryable transport error, reconnects, and the retry succeeds.
//! * **E — compute budget** (per-request `max_states` on a cold model):
//!   aggregation trips the state ceiling, answers a structured `budget`
//!   error, does *not* cache the half-built artifact, and an
//!   unrestricted retry builds the model fully.
//!
//! Afterwards: the `stats` containment counters (`panics_caught`,
//! `deadline_aborts`, `budget_aborts`, `retries`) must all have moved,
//! the daemon must still answer `ping`, and a warm answer must be
//! **bitwise identical** to a direct in-process [`Session`] evaluation —
//! recovery restores full correctness, not just liveness.
//!
//! With `--seed N` a **seeded randomized walk** follows the fixed one:
//! each iteration draws a failpoint and a fault class (panic, or a delay
//! raced against a request deadline) and a driving request that provably
//! reaches the armed point — a transient solve for `session.shard`, a
//! parametric sweep over `dds_parametric` for `session.sweep_point`, a
//! freshly generated and `load`-ed model (via [`arcade::fuzz`]) for the
//! cold-build-only `session.agg`. The first four iterations
//! deterministically cover the two in-solver failpoints
//! (`session.shard`, `session.sweep_point`) under both fault classes,
//! whatever the seed. Every iteration asserts the containment contract:
//! the structured error code matches the injected fault, the daemon
//! still answers `ping`, the poisoned cell heals (a disarmed retry
//! succeeds), and the matching containment counter moved. The walk ends
//! with the same bitwise warm-vs-direct check as the fixed phases.
//!
//! Exits non-zero (panics) on the first violated expectation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use smallrand::SmallRng;

use arcade::chaos::{self, Action};
use arcade::fuzz::{gen_system, GenConfig};
use arcade::printer::to_arcade_text;
use arcade::query::Session;
use arcade::serve::{expand_measures, serve, Client, Json, ServerConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut seed: Option<u64> = None;
    let mut iters: u64 = 12;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                seed = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--seed needs a non-negative integer"),
                )
            }
            "--iters" => {
                iters = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--iters needs a non-negative integer")
            }
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!("usage: serve_chaos [--smoke] [--seed N] [--iters N]");
                std::process::exit(2);
            }
        }
    }
    let cold_clients = if smoke { 4 } else { 8 };

    // Start from a clean slate whatever the environment says: this
    // harness arms its own failpoints, one phase at a time.
    chaos::disarm_all();

    let config = ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    };
    let handle = serve(config).expect("start in-process server");
    let addr = handle.local_addr().to_string();
    println!("serve_chaos: in-process server on {addr} ({cold_clients} cold clients)");

    let mut probe = Client::connect(&addr).expect("connect");

    // ---- Phase A: registry build panic with concurrent cold clients -----
    let dds_query = Json::obj([
        ("model", Json::str("dds")),
        (
            "measures",
            Json::Arr(vec![
                Json::str("steady_state_unavailability"),
                Json::str("mttf"),
                Json::str("unavailability"),
            ]),
        ),
        (
            "times",
            Json::Arr(vec![Json::Num(10.0), Json::Num(100.0), Json::Num(1000.0)]),
        ),
    ]);
    chaos::arm("serve.build", Action::Panic, Some(1));
    let barrier = Barrier::new(cold_clients);
    let ok = AtomicU64::new(0);
    let panicked = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..cold_clients {
            s.spawn(|| {
                let mut client = Client::connect(&addr).expect("connect");
                barrier.wait();
                match client.expect_ok(&dds_query) {
                    Ok(_) => ok.fetch_add(1, Ordering::Relaxed),
                    Err(e) => {
                        assert_eq!(
                            e.code, "internal_panic",
                            "cold client saw `{}` instead of internal_panic: {e}",
                            e.code
                        );
                        panicked.fetch_add(1, Ordering::Relaxed)
                    }
                };
            });
        }
    });
    let (ok, panicked) = (ok.into_inner(), panicked.into_inner());
    println!(
        "phase A (serve.build panic, {cold_clients} cold clients): \
         {panicked} internal_panic, {ok} succeeded"
    );
    assert_eq!(
        ok + panicked,
        cold_clients as u64,
        "a cold client hung instead of getting an answer"
    );
    assert!(
        panicked >= 1,
        "injected build panic never surfaced as internal_panic"
    );
    // The panic cleared the cell: a retried request rebuilds and succeeds.
    let recovered = probe
        .expect_ok_retry(&dds_query, 5)
        .expect("retry after build panic rebuilds the session");
    let recovered_values = Client::values(&recovered).expect("values");
    assert_eq!(
        recovered_values.len(),
        5,
        "2 timeless + 1 timed kind x 3 times"
    );
    probe.ping().expect("daemon alive after phase A");

    // ---- Phase B: aggregation panic inside the session ------------------
    let agg_query = Json::obj([
        ("model", Json::str("dds_scaled(2)")),
        (
            "measures",
            Json::Arr(vec![Json::str("steady_state_unavailability")]),
        ),
    ]);
    chaos::arm("session.agg", Action::Panic, Some(1));
    let e = probe
        .expect_ok(&agg_query)
        .expect_err("injected aggregation panic must answer an error");
    assert_eq!(e.code, "internal_panic", "{e}");
    let rebuilt = probe
        .expect_ok_retry(&agg_query, 5)
        .expect("retry after aggregation panic rebuilds");
    let rebuilt_values = Client::values(&rebuilt).expect("values");
    println!("phase B (session.agg panic): internal_panic, then rebuilt ok");
    probe.ping().expect("daemon alive after phase B");

    // ---- Phase C: deadline trips a chaos-delayed solve ------------------
    let timeout_ms: u64 = 200;
    chaos::arm("session.solve", Action::Delay(10 * timeout_ms), Some(1));
    let slow_query = Json::obj([
        ("model", Json::str("dds_scaled(2)")),
        (
            "measures",
            Json::Arr(vec![Json::obj([
                ("kind", Json::str("unavailability")),
                ("t", Json::Num(250.0)),
            ])]),
        ),
        ("timeout_ms", Json::Num(timeout_ms as f64)),
    ]);
    let t0 = Instant::now();
    let e = probe
        .expect_ok(&slow_query)
        .expect_err("deadline must trip under the injected solver delay");
    let elapsed = t0.elapsed();
    assert_eq!(e.code, "deadline", "{e}");
    assert!(
        elapsed < Duration::from_millis(2 * timeout_ms) + Duration::from_millis(100),
        "deadline answered only after {elapsed:?} for a {timeout_ms} ms budget"
    );
    println!(
        "phase C (session.solve delay + timeout_ms {timeout_ms}): \
         deadline error in {elapsed:?}"
    );
    chaos::disarm_all();
    // The half-solved artifact was not cached: the same query without a
    // deadline now solves fully.
    let solved = probe
        .expect_ok(&Json::obj([
            ("model", Json::str("dds_scaled(2)")),
            (
                "measures",
                Json::Arr(vec![Json::obj([
                    ("kind", Json::str("unavailability")),
                    ("t", Json::Num(250.0)),
                ])]),
            ),
        ]))
        .expect("query succeeds once the delay is disarmed");
    assert_eq!(Client::values(&solved).expect("values").len(), 1);
    probe.ping().expect("daemon alive after phase C");

    // ---- Phase D: torn write, client-side reconnect ---------------------
    chaos::arm("serve.respond", Action::Torn, Some(1));
    let e = probe
        .roundtrip(&agg_query)
        .map(|v| panic!("torn write still produced a full response: {v}"))
        .expect_err("torn response must be a transport error");
    assert_eq!(
        e.code, "io",
        "torn write must classify as retryable io: {e}"
    );
    assert!(Client::is_retryable(&e), "io must be retryable");
    let retried = probe
        .expect_ok_retry(&agg_query, 5)
        .expect("retry reconnects after the torn write");
    assert_eq!(
        Client::values(&retried).expect("values"),
        rebuilt_values,
        "post-torn warm answer drifted"
    );
    println!("phase D (serve.respond torn): io error, reconnect + retry ok");
    chaos::disarm_all();

    // ---- Phase E: compute budget caps a cold aggregation ----------------
    let budget_model = "dds_scaled(3)";
    let e = probe
        .expect_ok(&Json::obj([
            ("model", Json::str(budget_model)),
            (
                "measures",
                Json::Arr(vec![Json::str("steady_state_unavailability")]),
            ),
            ("max_states", Json::Num(4.0)),
        ]))
        .expect_err("a 4-state ceiling must trip on a combinatorial model");
    assert_eq!(e.code, "budget", "{e}");
    // Nothing half-built was cached: the unrestricted retry builds fully.
    let full = probe
        .expect_ok(&Json::obj([
            ("model", Json::str(budget_model)),
            (
                "measures",
                Json::Arr(vec![Json::str("steady_state_unavailability")]),
            ),
        ]))
        .expect("unrestricted query builds the model fully");
    assert_eq!(Client::values(&full).expect("values").len(), 1);
    println!("phase E (max_states 4 on {budget_model}): budget error, then full build ok");
    probe.ping().expect("daemon alive after phase E");

    // ---- Containment counters must all have moved -----------------------
    let stats = probe.stats().expect("stats");
    let server = stats.get("server").expect("server section");
    let counter = |name: &str| {
        server
            .get(name)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("stats missing {name}"))
    };
    assert!(counter("panics_caught") >= 2.0, "panics_caught never moved");
    assert!(
        counter("deadline_aborts") >= 1.0,
        "deadline_aborts never moved"
    );
    assert!(counter("budget_aborts") >= 1.0, "budget_aborts never moved");
    assert!(counter("retries") >= 1.0, "retries never moved");
    println!(
        "counters: panics_caught {}, deadline_aborts {}, budget_aborts {}, retries {}",
        counter("panics_caught"),
        counter("deadline_aborts"),
        counter("budget_aborts"),
        counter("retries"),
    );

    // ---- Post-recovery warm answers are bitwise identical ---------------
    let warm = probe.expect_ok(&dds_query).expect("warm query");
    assert_eq!(
        warm.get("cold"),
        Some(&Json::Bool(false)),
        "dds must be warm after recovery"
    );
    let warm_values = Client::values(&warm).expect("values");
    assert_eq!(
        warm_values, recovered_values,
        "warm answer drifted across the chaos run"
    );
    let measures = expand_measures(&dds_query).expect("expand the chaos batch");
    let def = arcade::cases::dds();
    let direct = Session::new(&def)
        .expect("direct session")
        .evaluate(&measures)
        .expect("direct evaluate");
    assert_eq!(direct.len(), warm_values.len());
    for (i, (a, b)) in direct.iter().zip(&warm_values).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "measure {i}: post-recovery served value {b:e} is not bitwise \
             identical to direct {a:e}"
        );
    }
    println!(
        "recovery: {} warm values bitwise identical to direct evaluation",
        direct.len()
    );

    // ---- Seeded randomized walk (opt-in via --seed) ---------------------
    if let Some(seed) = seed {
        run_seeded(&addr, &mut probe, seed, iters);
    }

    handle.shutdown();
    handle.join();
    println!("serve_chaos: OK");
}

/// Which fault class an iteration injects at its chosen failpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fault {
    /// `panic` at the point; the request must answer `internal_panic`.
    Panic,
    /// A long `delay` at the point raced against a short request
    /// deadline; the request must answer `deadline` promptly.
    Deadline,
}

/// A query on the warm `dds` model whose transient solve reaches
/// `session.shard` and `session.solve`. The time point varies per
/// iteration so no layer can serve a memoized answer instead of solving.
fn timed_query(t: f64, timeout_ms: Option<u64>) -> Json {
    let mut fields = vec![
        ("model", Json::str("dds")),
        (
            "measures",
            Json::Arr(vec![Json::obj([
                ("kind", Json::str("unavailability")),
                ("t", Json::Num(t)),
            ])]),
        ),
    ];
    if let Some(ms) = timeout_ms {
        fields.push(("timeout_ms", Json::Num(ms as f64)));
    }
    Json::obj(fields)
}

/// A two-point parametric sweep over `dds_parametric` that reaches
/// `session.sweep_point`. The grid values vary per iteration.
fn sweep_request(i: u64, timeout_ms: Option<u64>) -> Json {
    let v0 = arcade::cases::dds::DISK_RATE * (1.0 + 0.01 * i as f64);
    let mut fields = vec![
        ("cmd", Json::str("sweep")),
        ("model", Json::str("dds_parametric")),
        (
            "measures",
            Json::Arr(vec![Json::str("steady_state_unavailability")]),
        ),
        (
            "params",
            Json::Arr(vec![Json::obj([
                ("name", Json::str("disk_rate")),
                (
                    "values",
                    Json::Arr(vec![Json::Num(v0), Json::Num(v0 * 1.05)]),
                ),
            ])]),
        ),
    ];
    if let Some(ms) = timeout_ms {
        fields.push(("timeout_ms", Json::Num(ms as f64)));
    }
    Json::obj(fields)
}

fn read_counter(probe: &mut Client, name: &str) -> f64 {
    let stats = probe.stats().expect("stats");
    stats
        .get("server")
        .and_then(|s| s.get(name))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("stats missing {name}"))
}

fn run_seeded(addr: &str, probe: &mut Client, seed: u64, iters: u64) {
    println!("seeded chaos: seed {seed}, {iters} iterations");
    let mut rng = SmallRng::seed_from_u64(seed);
    // Deterministic coverage prefix: the two in-solver failpoints under
    // both fault classes, whatever the seed draws afterwards.
    let forced = [
        ("session.shard", Fault::Panic),
        ("session.shard", Fault::Deadline),
        ("session.sweep_point", Fault::Panic),
        ("session.sweep_point", Fault::Deadline),
    ];
    let points = [
        "session.shard",
        "session.sweep_point",
        "session.solve",
        "session.agg",
    ];
    let timeout_ms: u64 = 200;

    for i in 0..iters {
        let (point, fault) = if (i as usize) < forced.len() {
            forced[i as usize]
        } else {
            let p = points[rng.range_usize(0, points.len())];
            let f = if rng.flip() {
                Fault::Panic
            } else {
                Fault::Deadline
            };
            (p, f)
        };

        // Build the driving request for this point. `session.agg` only
        // runs on a cold build, so it gets a freshly generated model
        // loaded under a unique name; the in-solver points run against
        // warm models with per-iteration time points / grid values.
        let fault_request = match point {
            "session.sweep_point" => sweep_request(
                i,
                match fault {
                    Fault::Panic => None,
                    Fault::Deadline => Some(timeout_ms),
                },
            ),
            "session.agg" => {
                // Draw from the oracle-safe profile until the model
                // analyzes locally: the syntax profile admits models the
                // engine legitimately rejects (e.g. not weakly
                // deterministic), which would make the heal check fail
                // for a reason that has nothing to do with containment.
                let cfg = GenConfig::engine();
                let def = loop {
                    let candidate = gen_system(&mut rng, &cfg);
                    if Session::new(&candidate)
                        .and_then(|s| {
                            s.evaluate(&[arcade::query::Measure::SteadyStateUnavailability])
                        })
                        .is_ok()
                    {
                        break candidate;
                    }
                };
                let name = format!("chaos_gen_{i}");
                probe
                    .expect_ok(&Json::obj([
                        ("cmd", Json::str("load")),
                        ("name", Json::str(name.clone())),
                        ("source", Json::str(to_arcade_text(&def))),
                    ]))
                    .expect("load generated model");
                let mut fields = vec![
                    ("model", Json::str(name)),
                    (
                        "measures",
                        Json::Arr(vec![Json::str("steady_state_unavailability")]),
                    ),
                ];
                if fault == Fault::Deadline {
                    fields.push(("timeout_ms", Json::Num(timeout_ms as f64)));
                }
                Json::obj(fields)
            }
            _ => timed_query(
                61.0 + i as f64,
                match fault {
                    Fault::Panic => None,
                    Fault::Deadline => Some(timeout_ms),
                },
            ),
        };
        // The disarmed healing request: same work, no deadline.
        let heal_request = match point {
            "session.sweep_point" => sweep_request(i, None),
            "session.agg" => {
                let mut obj = fault_request.clone();
                if let Json::Obj(fields) = &mut obj {
                    fields.retain(|(k, _)| k != "timeout_ms");
                }
                obj
            }
            _ => timed_query(61.0 + i as f64, None),
        };

        // Warm the target model for the in-solver deadline cases, so the
        // short deadline races the *armed* failpoint, not a cold build.
        // Salted time points / grid values: a prewarm at the fault
        // request's own coordinates would let the session answer the
        // armed request from its memo without reaching the failpoint.
        if fault == Fault::Deadline && point != "session.agg" {
            let prewarm = match point {
                "session.sweep_point" => sweep_request(i + 7919, None),
                _ => timed_query(61.25 + i as f64, None),
            };
            probe
                .expect_ok_retry(&prewarm, 3)
                .unwrap_or_else(|e| panic!("iteration {i}: prewarm failed: {e}"));
        }

        let panics_before = read_counter(probe, "panics_caught");
        let deadlines_before = read_counter(probe, "deadline_aborts");
        match fault {
            Fault::Panic => {
                chaos::arm(point, Action::Panic, Some(1));
                // A single attempt: `internal_panic` is retryable, so a
                // retrying call would sail past the count-1 failpoint.
                let e = probe
                    .expect_ok(&fault_request)
                    .map(|_| panic!("iteration {i}: injected panic at {point} never surfaced"))
                    .unwrap_err();
                assert_eq!(
                    e.code, "internal_panic",
                    "iteration {i}: {point} panic answered `{}`: {e}",
                    e.code
                );
                chaos::disarm_all();
                let after = read_counter(probe, "panics_caught");
                assert!(
                    after > panics_before,
                    "iteration {i}: panics_caught stuck at {after}"
                );
            }
            Fault::Deadline => {
                chaos::arm(point, Action::Delay(10 * timeout_ms), Some(1));
                let t0 = Instant::now();
                let e = probe
                    .expect_ok(&fault_request)
                    .map(|_| panic!("iteration {i}: delay at {point} never tripped the deadline"))
                    .unwrap_err();
                let elapsed = t0.elapsed();
                assert_eq!(
                    e.code, "deadline",
                    "iteration {i}: {point} delay answered `{}`: {e}",
                    e.code
                );
                assert!(
                    elapsed < Duration::from_millis(2 * timeout_ms) + Duration::from_millis(200),
                    "iteration {i}: deadline answered only after {elapsed:?}"
                );
                chaos::disarm_all();
                let after = read_counter(probe, "deadline_aborts");
                assert!(
                    after > deadlines_before,
                    "iteration {i}: deadline_aborts stuck at {after}"
                );
            }
        }

        // Containment: the daemon still answers, and the cell heals — the
        // same work succeeds with chaos disarmed.
        probe
            .ping()
            .unwrap_or_else(|e| panic!("iteration {i}: daemon dead after {point}: {e}"));
        probe
            .expect_ok_retry(&heal_request, 5)
            .unwrap_or_else(|e| panic!("iteration {i}: {point} cell never healed: {e}"));
        println!("  iteration {i}: {point} {fault:?} contained, healed");
    }

    // Post-walk recovery is full correctness, not just liveness: a warm
    // answer is bitwise identical to a direct in-process evaluation.
    let check_query = timed_query(42.0, None);
    let warm = probe.expect_ok(&check_query).expect("post-walk warm query");
    let warm_values = Client::values(&warm).expect("values");
    let measures = expand_measures(&check_query).expect("expand");
    let direct = Session::new(&arcade::cases::dds())
        .expect("direct session")
        .evaluate(&measures)
        .expect("direct evaluate");
    assert_eq!(direct.len(), warm_values.len());
    for (k, (a, b)) in direct.iter().zip(&warm_values).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "measure {k}: post-seeded-walk value {b:e} vs direct {a:e}"
        );
    }
    let _ = addr;
    println!("seeded chaos: {iters} iterations contained, warm answers bitwise identical");
}
