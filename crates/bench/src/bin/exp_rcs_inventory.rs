//! Experiment: RCS inventory sensitivity. The paper's source \[7\] does not
//! publish the number of control valves per pump line; this sweep shows
//! how the 50-hour measures move with that choice and which inventory best
//! matches the published values (unavailability 6.52100e-10, unreliability
//! 5.29242e-9).
//!
//! Run: `cargo run --release -p arcade-bench --bin exp_rcs_inventory`

use arcade::cases::rcs::rcs_with_valves;
use arcade::engine::EngineOptions;
use arcade::modular::modular_analysis;
use arcade_bench::Table;

fn main() {
    let t = 50.0;
    let mut table = Table::new(&[
        "valves/line",
        "unavailability(50h)",
        "x paper",
        "unreliability(50h)",
        "x paper",
    ]);
    for v in 1..=4usize {
        let def = rcs_with_valves(v);
        let m = modular_analysis(&def, &EngineOptions::new()).expect("rcs");
        let ua = m.point_unavailability(t);
        let ur = m.unreliability_with_repair(t);
        table.row(&[
            v.to_string(),
            format!("{ua:.5e}"),
            format!("{:.2}", ua / 6.52100e-10),
            format!("{ur:.5e}"),
            format!("{:.2}", ur / 5.29242e-9),
        ]);
    }
    println!("RCS valve-inventory sweep (paper: 6.52100e-10 / 5.29242e-9):");
    println!("{}", table.render());
    println!("the measures scale smoothly with the unpublished valve count; the");
    println!("same multiplier appears on both measures for every inventory, which");
    println!("is why the x0.83 offset of the default model is attributed to the");
    println!("inventory rather than to the semantics.");
}
