//! Experiments F1–F9 — regenerates the building-block I/O-IMCs of the
//! paper's Figures 1–9 and reports their state/transition counts (and DOT
//! renderings on request with `--dot`).
//!
//! Run: `cargo run --release -p arcade-bench --bin exp_figures [--dot]`

use arcade::ast::{BcDef, OmGroup, RepairStrategy, RuDef, SmuDef, SystemDef};
use arcade::dist::Dist;
use arcade::expr::Expr;
use arcade::model::SystemModel;
use arcade_bench::Table;
use ioimc::builder::IoImcBuilder;
use ioimc::{Alphabet, IoImc};

struct Fig {
    id: &'static str,
    what: &'static str,
    imc: IoImc,
    alphabet: Alphabet,
    paper_note: &'static str,
}

fn main() {
    let dot = std::env::args().any(|a| a == "--dot");
    let figs = build_figures();
    let mut table = Table::new(&["figure", "block", "states", "transitions", "paper shows"]);
    for f in &figs {
        table.row(&[
            f.id.into(),
            f.what.into(),
            f.imc.num_states().to_string(),
            f.imc.num_transitions().to_string(),
            f.paper_note.into(),
        ]);
    }
    println!("Building-block I/O-IMCs (Figs. 1-9 of the paper)");
    println!("{}", table.render());
    println!("counts include the input self-loops the paper omits \"for readability\"");
    println!("and the explicit emission micro-states of this implementation.");
    if dot {
        for f in &figs {
            println!();
            println!("// --- {} : {} ---", f.id, f.what);
            println!("{}", ioimc::dot::to_dot(&f.imc, &f.alphabet, f.what));
        }
    }

    // The didactic two-state machine behind Figs. 2/6a, queried as one
    // batched availability curve through the lazy `Session`.
    let mut demo = SystemDef::new("fig-demo");
    demo.add_component(BcDef::new("bc", Dist::exp(0.001), Dist::exp(1.0)));
    demo.add_repair_unit(RuDef::new("ru", ["bc"], RepairStrategy::Dedicated));
    demo.set_system_down(Expr::down("bc"));
    let session = arcade::query::Session::new(&demo).expect("valid demo");
    let grid: Vec<f64> = (0..=8).map(|k| f64::from(k) * 500.0).collect();
    let batch: Vec<arcade::query::Measure> = grid
        .iter()
        .map(|&t| arcade::query::Measure::PointAvailability(t))
        .collect();
    let curve = session.evaluate(&batch).expect("curve");
    println!();
    println!("A(t) of the Fig 2/6a machine (λ=1e-3, µ=1), one batched query:");
    for (&t, &a) in grid.iter().zip(&curve) {
        println!("  A({t:>6.0} h) = {a:.9}");
    }
}

fn build_figures() -> Vec<Fig> {
    let mut figs = Vec::new();

    // Fig. 1: the didactic 5-state I/O-IMC, built directly.
    {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let mut bld = IoImcBuilder::new();
        bld.set_inputs([a]).set_outputs([b]);
        let s: Vec<_> = (0..5).map(|_| bld.add_state()).collect();
        bld.markovian(s[0], 1.0, s[1])
            .interactive(s[0], a, s[2])
            .markovian(s[2], 2.0, s[3])
            .interactive(s[3], b, s[4]);
        let imc = bld.complete_inputs().build().expect("fig1");
        figs.push(Fig {
            id: "Fig 1",
            what: "example I/O-IMC",
            imc,
            alphabet: ab,
            paper_note: "5 states",
        });
    }

    // Figs. 2/5: BC with (inactive,active) x (on,off) OM groups.
    {
        let (imc, ab) = bc_automaton(
            BcDef::new("bc", Dist::exp(0.001), Dist::exp(1.0))
                .with_om_group(OmGroup::ActiveInactive)
                .with_om_group(OmGroup::OnOff(Expr::down("power")))
                .with_ttf([Dist::exp(0.001), Dist::Never, Dist::exp(0.002), Dist::Never]),
            &["power"],
        );
        figs.push(Fig {
            id: "Fig 2/5",
            what: "BC, 2 OM groups + failure model",
            imc,
            alphabet: ab,
            paper_note: "4 op states + failure model",
        });
    }

    // Fig. 3: BC failure model with a destructive functional dependency.
    {
        let (imc, ab) = bc_automaton(
            BcDef::new("bc", Dist::exp(0.001), Dist::exp(1.0))
                .with_df(Expr::down("dep"), Dist::exp(1.0)),
            &["dep"],
        );
        figs.push(Fig {
            id: "Fig 3",
            what: "BC failure model with DF",
            imc,
            alphabet: ab,
            paper_note: "9 states (UP,1-6,DOWN_M,DOWN_DF)",
        });
    }

    // Fig. 4: two failure modes.
    {
        let (imc, ab) = bc_automaton(
            BcDef::new("bc", Dist::exp(0.001), Dist::exp(1.0))
                .with_failure_modes([0.3, 0.7], [Dist::exp(1.0), Dist::exp(2.0)]),
            &[],
        );
        figs.push(Fig {
            id: "Fig 4",
            what: "BC, two failure modes",
            imc,
            alphabet: ab,
            paper_note: "rate split 1-p / p",
        });
    }

    // Fig. 6(a): dedicated RU, single failure mode.
    {
        let (imc, ab) = ru_automaton(1, 1);
        figs.push(Fig {
            id: "Fig 6a",
            what: "dedicated RU, 1 mode",
            imc,
            alphabet: ab,
            paper_note: "3 states",
        });
    }
    // Fig. 6(b): dedicated RU, two failure modes.
    {
        let (imc, ab) = ru_automaton(1, 2);
        figs.push(Fig {
            id: "Fig 6b",
            what: "dedicated RU, 2 modes",
            imc,
            alphabet: ab,
            paper_note: "µ_m and µ_df branches",
        });
    }
    // Fig. 7: FCFS RU over two components.
    {
        let (imc, ab) = ru_automaton(2, 1);
        figs.push(Fig {
            id: "Fig 7",
            what: "FCFS RU, 2 components",
            imc,
            alphabet: ab,
            paper_note: "tracks arrival order",
        });
    }

    // Fig. 8: SMU, instantaneous activation.
    {
        let (imc, ab) = smu_automaton(None);
        figs.push(Fig {
            id: "Fig 8",
            what: "SMU (instant)",
            imc,
            alphabet: ab,
            paper_note: "activate/deactivate loop",
        });
    }
    // Fig. 9: SMU with exponential failover time.
    {
        let (imc, ab) = smu_automaton(Some(Dist::exp(10.0)));
        figs.push(Fig {
            id: "Fig 9",
            what: "SMU (failover exp)",
            imc,
            alphabet: ab,
            paper_note: "extra delay state",
        });
    }
    figs
}

/// Builds the named component's automaton inside a minimal system that
/// provides the referenced foreign components.
fn bc_automaton(bc: BcDef, foreign: &[&str]) -> (IoImc, Alphabet) {
    let mut def = SystemDef::new("fig");
    let name = bc.name.clone();
    for f in foreign {
        def.add_component(BcDef::new(*f, Dist::exp(0.001), Dist::exp(1.0)));
    }
    def.add_component(bc);
    def.set_system_down(Expr::down(name.clone()));
    let model = SystemModel::build(&def).expect("model");
    let block = model.block(&name).expect("block").clone();
    (block.imc, model.alphabet)
}

fn ru_automaton(comps: usize, modes: usize) -> (IoImc, Alphabet) {
    let mut def = SystemDef::new("fig");
    let names: Vec<String> = (0..comps).map(|i| format!("c{i}")).collect();
    for n in &names {
        let mut bc = BcDef::new(n, Dist::exp(0.001), Dist::exp(1.0));
        if modes == 2 {
            bc = bc.with_failure_modes([0.5, 0.5], [Dist::exp(1.0), Dist::exp(2.0)]);
        }
        def.add_component(bc);
    }
    let strategy = if comps == 1 {
        RepairStrategy::Dedicated
    } else {
        RepairStrategy::Fcfs
    };
    def.add_repair_unit(RuDef::new("ru", names, strategy));
    def.set_system_down(Expr::down("c0"));
    let model = SystemModel::build(&def).expect("model");
    let block = model.block("ru").expect("block").clone();
    (block.imc, model.alphabet)
}

fn smu_automaton(failover: Option<Dist>) -> (IoImc, Alphabet) {
    let mut def = SystemDef::new("fig");
    def.add_component(BcDef::new("pp", Dist::exp(0.001), Dist::exp(1.0)));
    def.add_component(
        BcDef::new("ps", Dist::exp(0.001), Dist::exp(1.0))
            .with_om_group(OmGroup::ActiveInactive)
            .with_ttf([Dist::exp(0.001), Dist::exp(0.001)]),
    );
    let mut smu = SmuDef::new("smu", "pp", ["ps"]);
    if let Some(f) = failover {
        smu = smu.with_failover(f);
    }
    def.add_smu(smu);
    def.set_system_down(Expr::and([Expr::down("pp"), Expr::down("ps")]));
    let model = SystemModel::build(&def).expect("model");
    let block = model.block("smu").expect("block").clone();
    (block.imc, model.alphabet)
}
