//! Scaling sweep — family size × thread count.
//!
//! Aggregates the scaled case families (`dds_scaled(n)` disk clusters,
//! `rcs_scaled(k)` pump lines) at several engine thread counts and
//! reports, per configuration: wall-clock time, speedup over the
//! single-threaded run, the peak intermediate I/O-IMC sizes, and the final
//! CTMC size. Every multi-threaded result is checked for exact equality
//! with the single-threaded CTMC — the parallel engine is a scheduling
//! change only.
//!
//! Run: `cargo run --release -p arcade-bench --bin exp_scaling`
//! (`-- --smoke` runs a seconds-sized subset for CI).

use std::time::Instant;

use arcade::cases::{dds_scaled, rcs_scaled};
use arcade::engine::{aggregate, Aggregation, EngineOptions};
use arcade::model::SystemModel;
use arcade_bench::Table;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Always include a >1 worker count (even on small machines) so the
    // parallel scheduling path is exercised; speedup is only meaningful
    // up to `hw` workers.
    let mut threads: Vec<usize> = if smoke { vec![1, 2] } else { vec![1, 2, 4, hw] };
    threads.sort_unstable();
    threads.dedup();

    println!(
        "scaling sweep on {hw} hardware threads{}",
        if smoke { " (smoke subset)" } else { "" }
    );
    println!();

    // Family sizes chosen so the slowest single-threaded run stays in the
    // tens of seconds (dds_scaled(12) and rcs_scaled(3) already take
    // minutes — the state spaces grow combinatorially with family size).
    let dds_sizes: Vec<usize> = if smoke { vec![3] } else { vec![2, 4, 6, 9] };
    let rcs_lines: Vec<usize> = vec![2];

    let mut table = Table::new(&[
        "family",
        "blocks",
        "threads",
        "time",
        "speedup",
        "peak states",
        "peak transitions",
        "CTMC",
    ]);
    for &n in &dds_sizes {
        sweep(
            &mut table,
            &format!("dds_scaled({n})"),
            &dds_scaled(n),
            &threads,
        );
    }
    for &k in &rcs_lines {
        sweep(
            &mut table,
            &format!("rcs_scaled({k})"),
            &rcs_scaled(k),
            &threads,
        );
    }
    println!("{}", table.render());
    println!(
        "every multi-threaded CTMC was verified identical to the 1-thread result; \
         speedups come from aggregating sibling fault-tree modules on worker threads"
    );
}

fn sweep(table: &mut Table, family: &str, def: &arcade::ast::SystemDef, threads: &[usize]) {
    let model = SystemModel::build(def).expect("case family elaborates");
    let mut baseline: Option<(f64, Aggregation)> = None;
    for &th in threads {
        let opts = EngineOptions::new().with_threads(th);
        let start = Instant::now();
        let agg = aggregate(&model, &opts).expect("aggregation succeeds");
        let secs = start.elapsed().as_secs_f64();
        let speedup = if let Some((base_secs, base_agg)) = &baseline {
            assert_eq!(
                agg.ctmc, base_agg.ctmc,
                "{family}: {th}-thread CTMC differs from the 1-thread result"
            );
            base_secs / secs
        } else {
            1.0
        };
        table.row(&[
            family.into(),
            model.blocks.len().to_string(),
            th.to_string(),
            format!("{:.3} s", secs),
            format!("{speedup:.2}x"),
            agg.largest_intermediate.states.to_string(),
            agg.largest_intermediate.transitions().to_string(),
            format!(
                "{} st / {} tr",
                agg.ctmc_stats.states,
                agg.ctmc_stats.transitions()
            ),
        ]);
        if baseline.is_none() {
            baseline = Some((secs, agg));
        }
    }
}
