//! Scaling sweep — family size × thread count, plus sparse-solver,
//! sharded-transient and adaptive-engine timings.
//!
//! Aggregates the scaled case families (`dds_scaled(n)` disk clusters,
//! `rcs_scaled(k)` pump lines, the `rcs_scaled_kofn(n, k)` k-of-n variant
//! and the stiff `rcs_stiff(k)` family) at several engine thread counts
//! and reports, per configuration: wall-clock time, speedup over the
//! single-threaded run, the peak intermediate I/O-IMC sizes, and the
//! final CTMC size. Every multi-threaded result is checked for exact
//! equality with the single-threaded CTMC — the parallel engine is a
//! scheduling change only.
//!
//! After each family's aggregation sweep the final CTMC is **solved**:
//! one steady-state distribution, then a 50-point transient
//! (unavailability) grid per requested transient thread count (`1, 2, 4`
//! by default; `--threads N` adds `N`; requests are clamped to the
//! machine's core count and both the requested and effective counts are
//! recorded), each timed separately and asserted **bitwise identical**
//! to the single-threaded grid. Two serial ablations follow:
//!
//! * the **exact global-Λ full-sweep engine** (`adaptive = false`) — the
//!   run must agree with the adaptive windowed engine to ≤ 1e-10
//!   sup-norm (the adaptive-engine regression gate), and the wall-clock
//!   and DTMC-step ratios are the adaptive win;
//! * **steady-state detection off** (`steady_tol = 0`) — must agree to
//!   ≤ 1e-10, measuring the steps detection saves.
//!
//! Families above the [`SolverOptions::dense_limit`] exercise the sparse
//! iterative path — the smoke subset includes `rcs_scaled(2)` (≈84k
//! states, ≈1.1M transitions), which the run asserts is solved without
//! the dense path, and `rcs_stiff(3)`, whose repair rates sit seven
//! orders of magnitude above its failure rates (the adaptive-Λ stress).
//!
//! After the family sweeps a **parametric sweep benchmark** runs: a
//! `dds_scaled_parametric` session evaluates a multi-hundred-point rate
//! grid through [`Session::sweep`] (one aggregation per configuration,
//! re-rated per point) and a rebuild-per-point baseline re-aggregates a
//! sampled subset from fresh sessions. The sampled points are asserted
//! bitwise identical between the two paths, and in `--smoke` mode the
//! re-rate path is **gated ≥ 10× faster** (points/sec) than rebuilding.
//!
//! `--json` additionally writes every transient measurement to
//! `BENCH_transient.json` (family, states, transitions, engine,
//! requested/effective threads, aggregation/steady/grid wall times, DTMC
//! step counts) plus a `sweep` object (`sweep_points_per_sec`, the
//! rebuild baseline and the speedup) for the bench trajectory; CI
//! uploads it as an artifact.
//!
//! Run: `cargo run --release -p arcade-bench --bin exp_scaling`
//! (`-- --smoke` runs a minutes-sized subset for CI; `--smoke --threads 2
//! --json` gates the sharded transient path and the adaptive ablation).

use std::time::Instant;

use arcade::cases::{
    dds_scaled, dds_scaled_parametric, rcs_scaled, rcs_scaled_kofn, rcs_scaled_parametric,
    rcs_stiff,
};
use arcade::engine::{aggregate, Aggregation, EngineOptions, RefineMode};
use arcade::model::SystemModel;
use arcade::modular::modular_analysis;
use arcade::query::{Measure, ParamGrid, Session};
use arcade_bench::Table;
use ctmc::measures::state_mass;
use ctmc::transient::{dtmc_steps_performed, reset_solver_counters, transient_many_with};
use ctmc::{steady, SolverOptions, TransientOptions};

/// One transient-grid measurement for the machine-readable output.
struct TransientRecord {
    family: String,
    states: usize,
    transitions: usize,
    /// `"adaptive"` (windowed, per-segment Λ) or `"exact"` (global-Λ
    /// full-sweep).
    engine: &'static str,
    threads_requested: usize,
    threads_effective: usize,
    steady_tol: f64,
    support_tol: f64,
    aggregation_secs: f64,
    /// Aggregation-phase breakdown (schema v2): wall time in refinement
    /// signatures, block splits and quotient construction, plus the
    /// worklist work counters.
    signature_secs: f64,
    split_secs: f64,
    quotient_secs: f64,
    refine_rounds: u64,
    states_resigned: u64,
    steady_secs: f64,
    grid_secs: f64,
    grid_points: usize,
    dtmc_steps: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");
    let extra_threads: Vec<usize> = args
        .windows(2)
        .filter(|w| w[0] == "--threads")
        .filter_map(|w| w[1].parse().ok())
        .collect();
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Always include a >1 worker request (even on small machines) so the
    // parallel scheduling path is exercised where cores exist; requests
    // are clamped to `hw` inside the engines, and both counts land in
    // the records.
    let mut threads: Vec<usize> = if smoke { vec![1, 2] } else { vec![1, 2, 4, hw] };
    threads.sort_unstable();
    threads.dedup();
    // Transient grids sweep their own thread list: the sharded DTMC step
    // is bitwise identical at every count, so the sweep doubles as the
    // parallel-transient regression gate (even in smoke mode, where the
    // 83,808-state rcs_scaled(2) grid is the workload that matters).
    let mut transient_threads: Vec<usize> = vec![1, 2, 4];
    transient_threads.extend(extra_threads);
    transient_threads.sort_unstable();
    transient_threads.dedup();

    // The aggregation and solver hot loops carry cooperative budget
    // checkpoints and chaos failpoints; disarmed, both reduce to one
    // relaxed atomic load and must cost nothing measurable. Refuse to
    // run with chaos armed (e.g. a stray ARCADE_CHAOS) — an injected
    // delay or panic would invalidate every timing and bitwise gate
    // below, and this assertion is what pins the "disarmed" claim in CI.
    assert!(
        !arcade::chaos::enabled(),
        "chaos failpoints are armed (ARCADE_CHAOS?); scaling timings would be meaningless"
    );

    println!(
        "scaling sweep on {hw} hardware threads{}",
        if smoke { " (smoke subset)" } else { "" }
    );
    println!();

    // Family sizes chosen so the slowest single-threaded run stays in the
    // tens of seconds (dds_scaled(12) and rcs_scaled(3) already take
    // minutes — the state spaces grow combinatorially with family size).
    let dds_sizes: Vec<usize> = if smoke { vec![3] } else { vec![2, 4, 6, 9] };
    // rcs_scaled(2) is the big sparse-solver workload: its CTMC has
    // ≈84k states, far beyond the dense limit. In smoke mode it runs
    // at one thread count only (the aggregation is the slow part).
    let rcs_threads: Vec<usize> = if smoke { vec![1] } else { threads.clone() };

    let mut records: Vec<TransientRecord> = Vec::new();
    let mut table = Table::new(&[
        "family",
        "blocks",
        "threads",
        "time",
        "speedup",
        "peak states",
        "peak transitions",
        "CTMC",
        "steady",
        "grid(50)",
    ]);
    for &n in &dds_sizes {
        sweep(
            &mut table,
            &format!("dds_scaled({n})"),
            &dds_scaled(n),
            &threads,
            &transient_threads,
            &mut records,
        );
    }
    let rcs_def = rcs_scaled(2);
    let (rcs_agg, rcs_u) = sweep(
        &mut table,
        "rcs_scaled(2)",
        &rcs_def,
        &rcs_threads,
        &transient_threads,
        &mut records,
    );
    // This family is the sparse-path regression gate: if the default
    // dense limit ever outgrows it, the iterative kernels lose coverage.
    assert!(
        rcs_agg.ctmc.num_states() > SolverOptions::default().dense_limit,
        "rcs_scaled(2) no longer exceeds the dense limit — pick a bigger family"
    );
    if smoke {
        worklist_gate(&rcs_def, &rcs_agg, rcs_u, &records);
    }
    // The stiff family: repair rates seven orders of magnitude above the
    // failure rates, so the adaptive per-segment Λ (chosen from the
    // ε-support's exit rates) runs far below the global uniformization
    // rate — the lever the exact-engine ablation quantifies.
    sweep(
        &mut table,
        "rcs_stiff(3)",
        &rcs_stiff(3),
        &rcs_threads,
        &transient_threads,
        &mut records,
    );
    if !smoke {
        sweep(
            &mut table,
            "rcs_scaled_kofn(2, 2)",
            &rcs_scaled_kofn(2, 2),
            &threads,
            &transient_threads,
            &mut records,
        );
    }
    println!("{}", table.render());

    // Cross-validate the sparse monolithic steady solve (reusing the
    // distribution from the sweep): the same family decomposes into
    // independent modules whose small CTMCs are solved on the dense
    // path, and the combined unavailability must agree.
    let sparse_u = rcs_u;
    let modular_u = modular_analysis(&rcs_def, &EngineOptions::new())
        .expect("modular analysis succeeds")
        .steady_state_unavailability();
    let rel = (sparse_u - modular_u).abs() / modular_u.max(1e-300);
    assert!(
        rel < 1e-6,
        "sparse steady unavailability {sparse_u:e} disagrees with the \
         modular dense result {modular_u:e} (rel {rel:e})"
    );
    println!(
        "sparse (monolithic, {} st) vs dense (modular) steady unavailability: \
         {sparse_u:.6e} vs {modular_u:.6e} (rel diff {rel:.1e})",
        rcs_agg.ctmc.num_states()
    );
    println!();
    println!(
        "every multi-threaded CTMC was verified identical to the 1-thread result, every \
         sharded transient grid bitwise identical to the serial grid, and every adaptive \
         windowed grid within 1e-10 of the exact global-Λ full-sweep engine; aggregation \
         speedups come from sibling fault-tree modules on worker threads, grid speedups \
         from the support-windowed adaptive engine, row sharding and steady-state \
         detection. families beyond the dense limit are solved on the sparse iterative \
         path."
    );
    println!();
    let sweep_rec = param_sweep_bench(smoke, *threads.last().expect("non-empty thread list"));
    rcs_sweep_gate(*threads.last().expect("non-empty thread list"));
    if json {
        let path = "BENCH_transient.json";
        arcade_bench::write_atomic(path, &render_json(hw, smoke, &records, &sweep_rec))
            .expect("write BENCH_transient.json");
        println!("wrote {} transient records to {path}", records.len());
    }
}

/// The acceptance check on the big sparse family: a ≥200-point sweep on
/// `rcs_scaled_parametric(2)` (83,808 quotient states) must run exactly
/// **one** aggregation, agree bitwise between thread counts 1 and
/// `threads`, and agree bitwise with fresh-session `evaluate_at` on
/// sampled points.
fn rcs_sweep_gate(threads: usize) {
    let def = rcs_scaled_parametric(2);
    let measures = [Measure::PointUnavailability(100.0)];
    // 4 values on each of the 4 declared rates: 256 points.
    let axes: Vec<(String, Vec<f64>)> = def
        .params
        .iter()
        .map(|p| {
            let vals = (0..4).map(|i| p.base * (0.7 + 0.2 * i as f64)).collect();
            (p.name.clone(), vals)
        })
        .collect();
    let grid = ParamGrid::cartesian(axes);

    let start = Instant::now();
    let serial_session = Session::new(&def)
        .expect("parametric family elaborates")
        .with_options(EngineOptions::new().with_threads(1));
    let serial = serial_session
        .sweep(&measures, &grid)
        .expect("serial sweep");
    let serial_secs = start.elapsed().as_secs_f64();
    assert!(serial.points.len() >= 200, "gate needs a ≥200-point grid");
    assert_eq!(
        serial_session.stats().aggregations_built,
        1,
        "rcs_scaled_parametric(2): the whole grid must re-rate one aggregation"
    );

    let start = Instant::now();
    let par_session = Session::new(&def)
        .expect("parametric family elaborates")
        .with_options(EngineOptions::new().with_threads(threads));
    let par = par_session.sweep(&measures, &grid).expect("parallel sweep");
    let par_secs = start.elapsed().as_secs_f64();
    assert_eq!(par_session.stats().aggregations_built, 1);
    for (i, (a, b)) in serial.values.iter().zip(&par.values).enumerate() {
        assert_eq!(
            a[0].to_bits(),
            b[0].to_bits(),
            "rcs point {i}: {threads}-thread sweep differs from serial"
        );
    }

    // Sampled fresh-session spot checks (each pays a full aggregation).
    for (point, row) in serial.points.iter().zip(&serial.values).step_by(128) {
        let fresh = Session::new(&def).expect("parametric family elaborates");
        let vals = fresh
            .evaluate_at(&measures, point)
            .expect("fresh evaluate_at");
        assert_eq!(
            vals[0].to_bits(),
            row[0].to_bits(),
            "rcs sweep value at {point:?} differs from a fresh session"
        );
    }
    println!(
        "rcs_scaled_parametric(2): {} points in {serial_secs:.3} s serial / \
         {par_secs:.3} s at {threads} threads ({:.1} points/s), one aggregation \
         for the whole grid, thread counts and sampled fresh sessions bitwise \
         identical",
        serial.points.len(),
        serial.points.len() as f64 / par_secs,
    );
}

/// Points re-evaluated from fresh sessions for the rebuild-per-point
/// baseline — each pays the full per-configuration aggregations that
/// [`Session::sweep`] amortises across the whole grid.
const REBUILD_SAMPLE: usize = 3;

/// One parametric-sweep measurement for the machine-readable output.
struct SweepBenchRecord {
    family: String,
    grid_points: usize,
    measures: usize,
    threads: usize,
    sweep_secs: f64,
    sweep_points_per_sec: f64,
    rebuild_sample: usize,
    rebuild_secs: f64,
    rebuild_points_per_sec: f64,
    rerate_speedup: f64,
    aggregations_built: u32,
}

/// Benchmarks [`Session::sweep`] on a parametric DDS family against a
/// rebuild-per-point baseline (fresh session + `evaluate_at`, i.e. one
/// aggregation pass per sampled point). The sampled points are asserted
/// bitwise identical between the two paths; in smoke mode the re-rate
/// path must be ≥ 10× faster in points/sec (the sweep regression gate).
fn param_sweep_bench(smoke: bool, threads: usize) -> SweepBenchRecord {
    let (n, fail_axis, repair_axis) = if smoke { (2, 4, 3) } else { (3, 6, 6) };
    let def = dds_scaled_parametric(n);
    let family = format!("dds_scaled_parametric({n})");
    // Multiplicative ladders over each declared base rate, 0.5×..2×:
    // proc_rate × disk_rate × repair_rate, 48 points in smoke, 216 full.
    let axes: Vec<(String, Vec<f64>)> = def
        .params
        .iter()
        .zip([fail_axis, fail_axis, repair_axis])
        .map(|(p, k)| {
            let vals = (0..k)
                .map(|i| p.base * 0.5 * 4.0f64.powf(i as f64 / (k - 1) as f64))
                .collect();
            (p.name.clone(), vals)
        })
        .collect();
    let grid = ParamGrid::cartesian(axes);
    let measures = [
        Measure::SteadyStateUnavailability,
        Measure::Mttf,
        Measure::Unreliability(1000.0),
    ];
    let opts = EngineOptions::new().with_threads(threads);
    let session = Session::new(&def)
        .expect("parametric family elaborates")
        .with_options(opts.clone());
    let start = Instant::now();
    let result = session.sweep(&measures, &grid).expect("sweep succeeds");
    let sweep_secs = start.elapsed().as_secs_f64();
    let stats = session.stats();
    // The whole grid must run exactly one aggregation per configuration
    // (availability + no-repair) — the quotient-reuse contract.
    assert_eq!(
        stats.aggregations_built, 2,
        "{family}: sweep re-aggregated instead of re-rating the quotient"
    );
    let grid_points = result.points.len();
    // Every point runs at least one uniformization sweep (the transient
    // measure), all attributed to this session's counters.
    assert!(
        stats.sweeps >= grid_points as u64,
        "{family}: session counted {} uniformization sweeps for {grid_points} points",
        stats.sweeps
    );

    // Rebuild-per-point baseline: a fresh session per sampled point pays
    // the aggregations again; `evaluate_at` must still agree bitwise.
    let rebuild_sample = REBUILD_SAMPLE.min(grid_points);
    let start = Instant::now();
    for (point, row) in result
        .points
        .iter()
        .zip(&result.values)
        .take(rebuild_sample)
    {
        let fresh = Session::new(&def)
            .expect("parametric family elaborates")
            .with_options(opts.clone());
        let vals = fresh
            .evaluate_at(&measures, point)
            .expect("fresh evaluate_at succeeds");
        for ((a, b), m) in vals.iter().zip(row).zip(&measures) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{family}: sweep value for {m:?} at {point:?} differs from a \
                 fresh session ({b:e} vs {a:e})"
            );
        }
    }
    let rebuild_secs = start.elapsed().as_secs_f64();
    let sweep_points_per_sec = grid_points as f64 / sweep_secs;
    let rebuild_points_per_sec = rebuild_sample as f64 / rebuild_secs;
    let rerate_speedup = sweep_points_per_sec / rebuild_points_per_sec;
    println!(
        "{family}: sweep {grid_points} points x {} measures in {sweep_secs:.3} s \
         ({sweep_points_per_sec:.1} points/s) vs rebuild-per-point \
         {rebuild_points_per_sec:.1} points/s over {rebuild_sample} sampled points \
         ({rerate_speedup:.1}x, sampled points bitwise identical, \
         {} aggregations for the whole grid)",
        measures.len(),
        stats.aggregations_built,
    );
    if smoke {
        assert!(
            rerate_speedup >= 10.0,
            "{family}: re-rate sweep is only {rerate_speedup:.1}x faster than \
             rebuild-per-point (gate: >= 10x)"
        );
    }
    SweepBenchRecord {
        family,
        grid_points,
        measures: measures.len(),
        threads,
        sweep_secs,
        sweep_points_per_sec,
        rebuild_sample,
        rebuild_secs,
        rebuild_points_per_sec,
        rerate_speedup,
        aggregations_built: stats.aggregations_built,
    }
}

/// The 1-thread `rcs_scaled(2)` aggregation wall time committed with the
/// pre-worklist engine (recompute-all refinement, no cross-step seeding) —
/// the baseline the worklist refactor is gated against.
const SEED_AGGREGATION_SECS: f64 = 8.647185;

/// The worklist-refiner regression gate (smoke mode): re-aggregates
/// `rcs_scaled(2)` with the legacy recompute-all engine and asserts the
/// worklist quotient is the same CTMC (sizes equal, steady measure within
/// 1e-12 — rate sums may associate differently under cross-step seeding)
/// and that the worklist aggregation beats the committed pre-worklist
/// seed time.
fn worklist_gate(
    def: &arcade::ast::SystemDef,
    agg: &Aggregation,
    steady_unavail: f64,
    records: &[TransientRecord],
) {
    let model = SystemModel::build(def).expect("case family elaborates");
    let legacy_opts = EngineOptions {
        refine: RefineMode::Legacy,
        ..EngineOptions::new()
    };
    let start = Instant::now();
    let legacy = aggregate(&model, &legacy_opts).expect("legacy aggregation succeeds");
    let legacy_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        legacy.ctmc_stats.states, agg.ctmc_stats.states,
        "worklist quotient CTMC state count differs from the legacy engine"
    );
    assert_eq!(
        legacy.ctmc_stats.transitions(),
        agg.ctmc_stats.transitions(),
        "worklist quotient CTMC transition count differs from the legacy engine"
    );
    let pi = steady::steady_state_with(&legacy.ctmc, &SolverOptions::default());
    let down: Vec<u32> = legacy.ctmc.states_with_label(1).collect();
    let legacy_unavail = state_mass(&down, &pi);
    let diff = (legacy_unavail - steady_unavail).abs();
    assert!(
        diff <= 1e-12,
        "worklist steady unavailability {steady_unavail:e} deviates from the \
         legacy engine's {legacy_unavail:e} by {diff:e}"
    );
    let worklist_secs = records
        .iter()
        .find(|r| r.family == "rcs_scaled(2)")
        .expect("rcs_scaled(2) was swept")
        .aggregation_secs;
    assert!(
        worklist_secs < SEED_AGGREGATION_SECS,
        "worklist aggregation ({worklist_secs:.3} s) no longer beats the \
         committed pre-worklist seed ({SEED_AGGREGATION_SECS:.3} s)"
    );
    println!(
        "rcs_scaled(2): worklist aggregation {worklist_secs:.3} s vs committed \
         pre-worklist seed {SEED_AGGREGATION_SECS:.3} s ({:.2}x) and in-process \
         legacy engine {legacy_secs:.3} s ({:.2}x); quotient CTMC sizes equal, \
         steady unavailability agrees to {diff:.1e}",
        SEED_AGGREGATION_SECS / worklist_secs,
        legacy_secs / worklist_secs,
    );
}

/// Runs the aggregation sweep for one family and returns the baseline
/// aggregation plus its steady-state unavailability (from the one solve
/// performed on the first pass).
fn sweep(
    table: &mut Table,
    family: &str,
    def: &arcade::ast::SystemDef,
    threads: &[usize],
    transient_threads: &[usize],
    records: &mut Vec<TransientRecord>,
) -> (Aggregation, f64) {
    let model = SystemModel::build(def).expect("case family elaborates");
    let mut baseline: Option<(f64, Aggregation)> = None;
    let mut steady_unavail = f64::NAN;
    for &th in threads {
        let opts = EngineOptions::new().with_threads(th);
        let start = Instant::now();
        let agg = aggregate(&model, &opts).expect("aggregation succeeds");
        let secs = start.elapsed().as_secs_f64();
        let speedup = if let Some((base_secs, base_agg)) = &baseline {
            assert_eq!(
                agg.ctmc, base_agg.ctmc,
                "{family}: {th}-thread CTMC differs from the 1-thread result"
            );
            base_secs / secs
        } else {
            1.0
        };
        // Solve the final chain once (on the first, single-threaded pass):
        // steady state plus the 50-point transient grids.
        let solve_cells = if baseline.is_none() {
            let (steady_secs, grid_secs, unavail) =
                solve(family, &agg, transient_threads, secs, records);
            steady_unavail = unavail;
            (format!("{steady_secs:.3} s"), format!("{grid_secs:.3} s"))
        } else {
            ("-".into(), "-".into())
        };
        table.row(&[
            family.into(),
            model.blocks.len().to_string(),
            th.to_string(),
            format!("{:.3} s", secs),
            format!("{speedup:.2}x"),
            agg.largest_intermediate.states.to_string(),
            agg.largest_intermediate.transitions().to_string(),
            format!(
                "{} st / {} tr",
                agg.ctmc_stats.states,
                agg.ctmc_stats.transitions()
            ),
            solve_cells.0,
            solve_cells.1,
        ]);
        if baseline.is_none() {
            baseline = Some((secs, agg));
        }
    }
    (
        baseline.expect("at least one thread count").1,
        steady_unavail,
    )
}

/// Sup-norm distance between two grids of distributions.
fn grid_sup_diff(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    a.iter()
        .zip(b)
        .flat_map(|(x, y)| x.iter().zip(y))
        .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()))
}

/// Solves steady state once, then the 50-point transient grid on the
/// adaptive engine at every requested thread count (bitwise-checked
/// against the serial grid), one exact global-Λ full-sweep ablation
/// (≤ 1e-10 agreement gate — the adaptive-engine regression check) and
/// one detection-disabled ablation, appending a record per run. Returns
/// the steady wall time, the serial adaptive grid wall time and the
/// steady-state unavailability.
fn solve(
    family: &str,
    agg: &Aggregation,
    transient_threads: &[usize],
    aggregation_secs: f64,
    records: &mut Vec<TransientRecord>,
) -> (f64, f64, f64) {
    let ctmc = &agg.ctmc;
    let opts = SolverOptions::default();
    if ctmc.num_states() > opts.dense_limit {
        println!(
            "{family}: {} states > dense limit {} -- sparse iterative path",
            ctmc.num_states(),
            opts.dense_limit
        );
    }
    let down: Vec<u32> = ctmc.states_with_label(1).collect();

    let start = Instant::now();
    let pi = steady::steady_state_with(ctmc, &opts);
    let steady_secs = start.elapsed().as_secs_f64();
    let mass: f64 = pi.iter().sum();
    assert!(
        (mass - 1.0).abs() < 1e-9,
        "{family}: steady state not normalized (mass {mass})"
    );
    let unavail = state_mass(&down, &pi);
    assert!(
        unavail.is_finite() && (0.0..=1.0).contains(&unavail),
        "{family}: bad steady unavailability {unavail}"
    );

    // 50-point unavailability curve over a mission-sized horizon, one
    // incremental uniformization sweep per run.
    let grid: Vec<f64> = (1..=50).map(|k| k as f64 * 20.0).collect();
    let mut push_record = |topts: &TransientOptions, engine, grid_secs: f64, steps: u64| {
        records.push(TransientRecord {
            family: family.to_owned(),
            states: ctmc.num_states(),
            transitions: ctmc.num_transitions(),
            engine,
            threads_requested: topts.threads,
            threads_effective: ioimc::par::effective_threads(topts.threads),
            steady_tol: topts.steady_tol,
            support_tol: topts.support_tol,
            aggregation_secs,
            signature_secs: agg.refine.signature_secs,
            split_secs: agg.refine.split_secs,
            quotient_secs: agg.refine.quotient_secs,
            refine_rounds: agg.refine.refine_rounds,
            states_resigned: agg.refine.states_resigned,
            steady_secs,
            grid_secs,
            grid_points: grid.len(),
            dtmc_steps: steps,
        });
    };
    let mut reference: Option<(f64, Vec<Vec<f64>>)> = None;
    let mut adaptive_steps = 0u64;
    for &th in transient_threads {
        let topts = TransientOptions::default().with_threads(th);
        reset_solver_counters();
        let start = Instant::now();
        let curve = transient_many_with(ctmc, &grid, &topts);
        let grid_secs = start.elapsed().as_secs_f64();
        let steps = dtmc_steps_performed();
        push_record(&topts, "adaptive", grid_secs, steps);
        if reference.is_none() {
            adaptive_steps = steps;
        }
        match &reference {
            None => {
                for (i, pi_t) in curve.iter().enumerate() {
                    let u = state_mass(&down, pi_t);
                    assert!(
                        u.is_finite() && (0.0..=1.0).contains(&u),
                        "{family}: bad point unavailability {u} at t={}",
                        grid[i]
                    );
                }
                println!(
                    "{family}: steady unavailability {unavail:.3e}, U({:.0}) = {:.3e}, \
                     grid {grid_secs:.3} s at {th} thread(s) ({steps} DTMC steps, adaptive)",
                    grid[grid.len() - 1],
                    state_mass(&down, &curve[curve.len() - 1])
                );
                reference = Some((grid_secs, curve));
            }
            Some((base_secs, base_curve)) => {
                assert_eq!(
                    &curve, base_curve,
                    "{family}: {th}-thread transient grid differs from the serial grid"
                );
                println!(
                    "{family}: grid {grid_secs:.3} s at {th} thread(s) \
                     ({:.2}x, bitwise identical)",
                    base_secs / grid_secs
                );
            }
        }
    }
    let (base_secs, base_curve) = reference.as_ref().expect("at least one thread count");

    // Adaptive-engine ablation: the exact global-Λ full-sweep engine on
    // the same serial grid. The agreement gate is the adaptive engine's
    // regression check; the wall-clock and step ratios are its win.
    let exact_opts = TransientOptions::default().with_adaptive(false);
    reset_solver_counters();
    let start = Instant::now();
    let exact_curve = transient_many_with(ctmc, &grid, &exact_opts);
    let exact_secs = start.elapsed().as_secs_f64();
    let exact_steps = dtmc_steps_performed();
    push_record(&exact_opts, "exact", exact_secs, exact_steps);
    let adaptive_diff = grid_sup_diff(base_curve, &exact_curve);
    assert!(
        adaptive_diff < 1e-10,
        "{family}: adaptive windowed grid deviates from the exact engine by {adaptive_diff:e}"
    );
    println!(
        "{family}: adaptive {base_secs:.3} s / {adaptive_steps} steps vs exact \
         {exact_secs:.3} s / {exact_steps} steps ({:.1}x wall, {:.1}x steps), \
         grids agree to {adaptive_diff:.1e}",
        exact_secs / base_secs,
        exact_steps as f64 / adaptive_steps.max(1) as f64,
    );

    // Detection ablation: the same serial grid with steady-state
    // detection off measures the DTMC steps the detector saves.
    let no_detect = TransientOptions::default().with_steady_tol(0.0);
    reset_solver_counters();
    let start = Instant::now();
    let undetected = transient_many_with(ctmc, &grid, &no_detect);
    let ablation_secs = start.elapsed().as_secs_f64();
    let ablation_steps = dtmc_steps_performed();
    push_record(&no_detect, "adaptive", ablation_secs, ablation_steps);
    let max_diff = grid_sup_diff(base_curve, &undetected);
    assert!(
        max_diff < 1e-10,
        "{family}: steady-state detection perturbed the grid by {max_diff:e}"
    );
    println!(
        "{family}: detection {adaptive_steps} vs {ablation_steps} DTMC steps \
         (ablation {ablation_secs:.3} s), grids agree to {max_diff:.1e}"
    );
    (steady_secs, *base_secs, unavail)
}

/// Renders the records as a self-contained JSON document (the workspace
/// is dependency-free, so the encoder is by hand like the CLI's).
fn render_json(
    hw: usize,
    smoke: bool,
    records: &[TransientRecord],
    sweep: &SweepBenchRecord,
) -> String {
    let mut rows = String::new();
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        rows.push_str(&format!(
            "\n  {{\"family\":\"{}\",\"states\":{},\"transitions\":{},\"engine\":\"{}\",\
             \"threads_requested\":{},\"threads_effective\":{},\
             \"steady_tol\":{:e},\"support_tol\":{:e},\"aggregation_secs\":{:.6},\
             \"signature_secs\":{:.6},\"split_secs\":{:.6},\"quotient_secs\":{:.6},\
             \"refine_rounds\":{},\"states_resigned\":{},\
             \"steady_secs\":{:.6},\"grid_secs\":{:.6},\
             \"grid_points\":{},\"dtmc_steps\":{}}}",
            r.family,
            r.states,
            r.transitions,
            r.engine,
            r.threads_requested,
            r.threads_effective,
            r.steady_tol,
            r.support_tol,
            r.aggregation_secs,
            r.signature_secs,
            r.split_secs,
            r.quotient_secs,
            r.refine_rounds,
            r.states_resigned,
            r.steady_secs,
            r.grid_secs,
            r.grid_points,
            r.dtmc_steps,
        ));
    }
    let sweep_obj = format!(
        "{{\"family\":\"{}\",\"grid_points\":{},\"measures\":{},\"threads\":{},\
         \"sweep_secs\":{:.6},\"sweep_points_per_sec\":{:.3},\
         \"rebuild_sample\":{},\"rebuild_secs\":{:.6},\
         \"rebuild_points_per_sec\":{:.3},\"rerate_speedup\":{:.3},\
         \"aggregations_built\":{}}}",
        sweep.family,
        sweep.grid_points,
        sweep.measures,
        sweep.threads,
        sweep.sweep_secs,
        sweep.sweep_points_per_sec,
        sweep.rebuild_sample,
        sweep.rebuild_secs,
        sweep.rebuild_points_per_sec,
        sweep.rerate_speedup,
        sweep.aggregations_built,
    );
    format!(
        "{{\"bench\":\"exp_scaling_transient\",\"schema_version\":3,\
         \"hw_threads\":{hw},\"smoke\":{smoke},\
         \"sweep\":{sweep_obj},\
         \"records\":[{rows}\n]}}\n"
    )
}
