//! Scaling sweep — family size × thread count, plus sparse-solver timings.
//!
//! Aggregates the scaled case families (`dds_scaled(n)` disk clusters,
//! `rcs_scaled(k)` pump lines and the `rcs_scaled_kofn(n, k)` k-of-n
//! variant) at several engine thread counts and reports, per
//! configuration: wall-clock time, speedup over the single-threaded run,
//! the peak intermediate I/O-IMC sizes, and the final CTMC size. Every
//! multi-threaded result is checked for exact equality with the
//! single-threaded CTMC — the parallel engine is a scheduling change only.
//!
//! After each family's aggregation sweep the final CTMC is **solved**:
//! one steady-state distribution and one 50-point transient
//! (unavailability) grid, timed separately. Families above the
//! [`SolverOptions::dense_limit`] exercise the sparse iterative path —
//! the smoke subset includes `rcs_scaled(2)` (≈84k states, ≈1.1M
//! transitions), which the run asserts is solved without the dense path.
//!
//! Run: `cargo run --release -p arcade-bench --bin exp_scaling`
//! (`-- --smoke` runs a minutes-sized subset for CI).

use std::time::Instant;

use arcade::cases::{dds_scaled, rcs_scaled, rcs_scaled_kofn};
use arcade::engine::{aggregate, Aggregation, EngineOptions};
use arcade::model::SystemModel;
use arcade::modular::modular_analysis;
use arcade_bench::Table;
use ctmc::measures::state_mass;
use ctmc::{steady, transient, SolverOptions};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Always include a >1 worker count (even on small machines) so the
    // parallel scheduling path is exercised; speedup is only meaningful
    // up to `hw` workers.
    let mut threads: Vec<usize> = if smoke { vec![1, 2] } else { vec![1, 2, 4, hw] };
    threads.sort_unstable();
    threads.dedup();

    println!(
        "scaling sweep on {hw} hardware threads{}",
        if smoke { " (smoke subset)" } else { "" }
    );
    println!();

    // Family sizes chosen so the slowest single-threaded run stays in the
    // tens of seconds (dds_scaled(12) and rcs_scaled(3) already take
    // minutes — the state spaces grow combinatorially with family size).
    let dds_sizes: Vec<usize> = if smoke { vec![3] } else { vec![2, 4, 6, 9] };
    // rcs_scaled(2) is the big sparse-solver workload: its CTMC has
    // ≈84k states, far beyond the dense limit. In smoke mode it runs
    // at one thread count only (the aggregation is the slow part).
    let rcs_threads: Vec<usize> = if smoke { vec![1] } else { threads.clone() };

    let mut table = Table::new(&[
        "family",
        "blocks",
        "threads",
        "time",
        "speedup",
        "peak states",
        "peak transitions",
        "CTMC",
        "steady",
        "grid(50)",
    ]);
    for &n in &dds_sizes {
        sweep(
            &mut table,
            &format!("dds_scaled({n})"),
            &dds_scaled(n),
            &threads,
        );
    }
    let rcs_def = rcs_scaled(2);
    let (rcs_agg, rcs_u) = sweep(&mut table, "rcs_scaled(2)", &rcs_def, &rcs_threads);
    // This family is the sparse-path regression gate: if the default
    // dense limit ever outgrows it, the iterative kernels lose coverage.
    assert!(
        rcs_agg.ctmc.num_states() > SolverOptions::default().dense_limit,
        "rcs_scaled(2) no longer exceeds the dense limit — pick a bigger family"
    );
    if !smoke {
        sweep(
            &mut table,
            "rcs_scaled_kofn(2, 2)",
            &rcs_scaled_kofn(2, 2),
            &rcs_threads,
        );
    }
    println!("{}", table.render());

    // Cross-validate the sparse monolithic steady solve (reusing the
    // distribution from the sweep): the same family decomposes into
    // independent modules whose small CTMCs are solved on the dense
    // path, and the combined unavailability must agree.
    let sparse_u = rcs_u;
    let modular_u = modular_analysis(&rcs_def, &EngineOptions::new())
        .expect("modular analysis succeeds")
        .steady_state_unavailability();
    let rel = (sparse_u - modular_u).abs() / modular_u.max(1e-300);
    assert!(
        rel < 1e-6,
        "sparse steady unavailability {sparse_u:e} disagrees with the \
         modular dense result {modular_u:e} (rel {rel:e})"
    );
    println!(
        "sparse (monolithic, {} st) vs dense (modular) steady unavailability: \
         {sparse_u:.6e} vs {modular_u:.6e} (rel diff {rel:.1e})",
        rcs_agg.ctmc.num_states()
    );
    println!();
    println!(
        "every multi-threaded CTMC was verified identical to the 1-thread result; \
         speedups come from aggregating sibling fault-tree modules on worker threads. \
         families beyond the dense limit are solved on the sparse iterative path."
    );
}

/// Runs the aggregation sweep for one family and returns the baseline
/// aggregation plus its steady-state unavailability (from the one solve
/// performed on the first pass).
fn sweep(
    table: &mut Table,
    family: &str,
    def: &arcade::ast::SystemDef,
    threads: &[usize],
) -> (Aggregation, f64) {
    let model = SystemModel::build(def).expect("case family elaborates");
    let mut baseline: Option<(f64, Aggregation)> = None;
    let mut steady_unavail = f64::NAN;
    for &th in threads {
        let opts = EngineOptions::new().with_threads(th);
        let start = Instant::now();
        let agg = aggregate(&model, &opts).expect("aggregation succeeds");
        let secs = start.elapsed().as_secs_f64();
        let speedup = if let Some((base_secs, base_agg)) = &baseline {
            assert_eq!(
                agg.ctmc, base_agg.ctmc,
                "{family}: {th}-thread CTMC differs from the 1-thread result"
            );
            base_secs / secs
        } else {
            1.0
        };
        // Solve the final chain once (on the first, single-threaded pass):
        // steady state plus a 50-point transient unavailability grid.
        let solve_cells = if baseline.is_none() {
            let (steady_secs, grid_secs, unavail) = solve(family, &agg);
            steady_unavail = unavail;
            (format!("{steady_secs:.3} s"), format!("{grid_secs:.3} s"))
        } else {
            ("-".into(), "-".into())
        };
        table.row(&[
            family.into(),
            model.blocks.len().to_string(),
            th.to_string(),
            format!("{:.3} s", secs),
            format!("{speedup:.2}x"),
            agg.largest_intermediate.states.to_string(),
            agg.largest_intermediate.transitions().to_string(),
            format!(
                "{} st / {} tr",
                agg.ctmc_stats.states,
                agg.ctmc_stats.transitions()
            ),
            solve_cells.0,
            solve_cells.1,
        ]);
        if baseline.is_none() {
            baseline = Some((secs, agg));
        }
    }
    (
        baseline.expect("at least one thread count").1,
        steady_unavail,
    )
}

/// Solves steady state + a 50-point transient grid on the aggregated
/// chain, asserting basic sanity. Returns the two wall-clock timings and
/// the steady-state unavailability.
fn solve(family: &str, agg: &Aggregation) -> (f64, f64, f64) {
    let ctmc = &agg.ctmc;
    let opts = SolverOptions::default();
    if ctmc.num_states() > opts.dense_limit {
        println!(
            "{family}: {} states > dense limit {} -- sparse iterative path",
            ctmc.num_states(),
            opts.dense_limit
        );
    }
    let down: Vec<u32> = ctmc.states_with_label(1).collect();

    let start = Instant::now();
    let pi = steady::steady_state_with(ctmc, &opts);
    let steady_secs = start.elapsed().as_secs_f64();
    let mass: f64 = pi.iter().sum();
    assert!(
        (mass - 1.0).abs() < 1e-9,
        "{family}: steady state not normalized (mass {mass})"
    );
    let unavail = state_mass(&down, &pi);
    assert!(
        unavail.is_finite() && (0.0..=1.0).contains(&unavail),
        "{family}: bad steady unavailability {unavail}"
    );

    // 50-point unavailability curve over a mission-sized horizon, one
    // incremental uniformization sweep.
    let grid: Vec<f64> = (1..=50).map(|k| k as f64 * 20.0).collect();
    let start = Instant::now();
    let curve = transient::transient_many(ctmc, &grid);
    let grid_secs = start.elapsed().as_secs_f64();
    for (i, pi_t) in curve.iter().enumerate() {
        let u = state_mass(&down, pi_t);
        assert!(
            u.is_finite() && (0.0..=1.0).contains(&u),
            "{family}: bad point unavailability {u} at t={}",
            grid[i]
        );
    }
    println!(
        "{family}: steady unavailability {unavail:.3e}, U({:.0}) = {:.3e}",
        grid[grid.len() - 1],
        state_mass(&down, &curve[curve.len() - 1])
    );
    (steady_secs, grid_secs, unavail)
}
