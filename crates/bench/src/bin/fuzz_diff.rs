//! `fuzz_diff` — seeded differential fuzzing of the analysis pipeline.
//!
//! ```text
//! fuzz_diff [--smoke] [--seed N] [--iters N] [--out DIR]
//! ```
//!
//! Each iteration draws a random model from the engine profile of
//! [`arcade::fuzz::gen_system`] and runs all four differential oracle
//! pairs on it ([`arcade::fuzz::OraclePair`]): monolithic session vs
//! modular decomposition, adaptive vs exact transient, dense vs
//! iterative steady solvers, and exact vs Monte-Carlo. A disagreement
//! beyond tolerance is delta-debugged down to a minimal model
//! ([`arcade::fuzz::shrink_system`]) and committed as a
//! schema-versioned evidence artifact under `--out` (atomic
//! temp-and-rename writes, so an interrupted run never leaves a
//! half-written record). The run summary always lands in
//! `DIR/summary.json`.
//!
//! Fully deterministic for a fixed `--seed`: the generator, the oracle
//! horizons, and the Monte-Carlo simulation stream all derive from it,
//! so `--smoke` in CI can never flake. Exits non-zero iff at least one
//! disagreement survived.

use std::process::ExitCode;

use smallrand::SmallRng;

use arcade::fuzz::{check_pair, gen_system, Evidence, GenConfig, OraclePair};
use arcade::printer::to_arcade_text;
use arcade::serve::Json;
use arcade_bench::write_atomic;

const SMOKE_SEED: u64 = 0xF0DD;
const SMOKE_ITERS: u64 = 64;

fn main() -> ExitCode {
    // Differential results are only meaningful with fault injection off —
    // an injected delay or panic would turn every oracle run into noise.
    // The same guard pins `exp_scaling`'s timing claims.
    assert!(
        !arcade::chaos::enabled(),
        "chaos failpoints are armed (ARCADE_CHAOS?); differential results would be meaningless"
    );

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 1;
    let mut iters: u64 = 256;
    let mut out_dir = "artifacts/fuzz".to_owned();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => {
                seed = SMOKE_SEED;
                iters = SMOKE_ITERS;
            }
            "--seed" => seed = parse(it.next(), "--seed"),
            "--iters" => iters = parse(it.next(), "--iters"),
            "--out" => out_dir = it.next().expect("--out needs a value").clone(),
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!("usage: fuzz_diff [--smoke] [--seed N] [--iters N] [--out DIR]");
                return ExitCode::FAILURE;
            }
        }
    }
    std::fs::create_dir_all(&out_dir).expect("create artifact directory");

    println!("fuzz_diff: seed {seed}, {iters} iterations, artifacts in {out_dir}/");
    let cfg = GenConfig::engine();
    let mut checked_per_pair = [0u64; 4];
    let mut skipped: u64 = 0;
    let mut artifacts: Vec<String> = Vec::new();
    let mut survivors: u64 = 0;

    for iteration in 0..iters {
        // Distinct, well-mixed stream per iteration.
        let iter_seed = seed ^ (iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = SmallRng::seed_from_u64(iter_seed);

        // Draw until the model is analyzable under the fuzz state budget
        // (a draw that trips it counts as a skip, never as a silent pass).
        let mut def = gen_system(&mut rng, &cfg);
        let mut attempts = 0;
        loop {
            match check_pair(&def, OraclePair::Modular, iter_seed) {
                Ok(_) => break,
                Err(_) if attempts < 8 => {
                    attempts += 1;
                    skipped += 1;
                    def = gen_system(&mut rng, &cfg);
                }
                Err(e) => {
                    panic!("iteration {iteration}: no analyzable model after 8 draws: {e}")
                }
            }
        }

        for (pi, pair) in OraclePair::ALL.into_iter().enumerate() {
            let disagreements = match check_pair(&def, pair, iter_seed) {
                Ok(ds) => ds,
                Err(e) => {
                    // The probe above ran the full pipeline once, so a
                    // pair-specific failure here is a real bug surface.
                    panic!("iteration {iteration}: {} oracle failed: {e}", pair.name())
                }
            };
            checked_per_pair[pi] += 1;
            for d in disagreements {
                survivors += 1;
                println!(
                    "iteration {iteration}: DISAGREEMENT [{}] {}: {} vs {} (tol {})",
                    d.pair.name(),
                    d.measure,
                    d.primary,
                    d.oracle,
                    d.tolerance
                );
                // Reduce while *this pair* still disagrees on *some*
                // measure; oracle errors reject the candidate.
                let outcome = arcade::fuzz::shrink_system(&def, |cand| {
                    check_pair(cand, pair, iter_seed)
                        .map(|ds| !ds.is_empty())
                        .unwrap_or(false)
                });
                let evidence = Evidence {
                    seed: iter_seed,
                    iteration,
                    disagreement: d,
                    original: to_arcade_text(&def),
                    minimal: to_arcade_text(&outcome.def),
                    shrink_steps: outcome.steps,
                    shrink_checks: outcome.checks,
                };
                let path = format!("{out_dir}/{}", evidence.file_name());
                write_atomic(&path, &evidence.to_json().to_string())
                    .expect("write evidence artifact");
                println!(
                    "  shrunk in {} steps / {} checks -> {path}",
                    outcome.steps, outcome.checks
                );
                artifacts.push(path);
            }
        }
        if (iteration + 1) % 16 == 0 {
            println!("  ... {}/{iters} iterations", iteration + 1);
        }
    }

    let summary = Json::obj([
        ("schema", Json::Num(f64::from(arcade::fuzz::SCHEMA_VERSION))),
        ("seed", Json::Num(seed as f64)),
        ("iterations", Json::Num(iters as f64)),
        (
            "checked",
            Json::obj([
                ("modular", Json::Num(checked_per_pair[0] as f64)),
                ("adaptive_transient", Json::Num(checked_per_pair[1] as f64)),
                ("steady_solver", Json::Num(checked_per_pair[2] as f64)),
                ("monte_carlo", Json::Num(checked_per_pair[3] as f64)),
            ]),
        ),
        ("skipped_draws", Json::Num(skipped as f64)),
        ("disagreements", Json::Num(survivors as f64)),
        (
            "artifacts",
            Json::Arr(artifacts.iter().map(Json::str).collect()),
        ),
    ]);
    let summary_path = format!("{out_dir}/summary.json");
    write_atomic(&summary_path, &summary.to_string()).expect("write summary");

    println!(
        "fuzz_diff: {} pair-checks across {iters} iterations, {skipped} skipped draws, \
         {survivors} disagreements -> {summary_path}",
        checked_per_pair.iter().sum::<u64>()
    );
    if survivors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn parse(v: Option<&String>, flag: &str) -> u64 {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("{flag} needs a non-negative integer"))
}
