//! Debug tracer: step-by-step monolithic aggregation of a scaled DDS.
use arcade::cases::dds::dds_scaled;
use arcade::engine::{aggregate, EngineOptions};
use arcade::model::SystemModel;

fn main() {
    let k: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let def = dds_scaled(k);
    let model = SystemModel::build(&def).expect("model");
    let t0 = std::time::Instant::now();
    let agg = aggregate(&model, &EngineOptions::new()).expect("aggregate");
    for s in &agg.steps {
        eprintln!(
            "+ {:<16} {:>8} st -> {:>6} st",
            s.block, s.composed.states, s.reduced.states
        );
    }
    eprintln!(
        "peak: {} st / {} tr",
        agg.largest_intermediate.states,
        agg.largest_intermediate.transitions()
    );
    eprintln!(
        "final CTMC: {} st / {} tr",
        agg.ctmc_stats.states,
        agg.ctmc_stats.transitions()
    );
    eprintln!("elapsed: {:?}", t0.elapsed());
}
