//! Experiment T1 — regenerates **Table 1** of the paper: steady-state
//! availability and 5-week reliability of the distributed database system,
//! in three tool columns (Arcade pipeline / analytic static fault tree in
//! the Galileo role / Monte-Carlo simulation in the SAN role).
//!
//! Run: `cargo run --release -p arcade-bench --bin exp_table1`

use arcade::analytic;
use arcade::cases::dds::{dds, FIVE_WEEKS_H};
use arcade::engine::EngineOptions;
use arcade::modular::modular_analysis;
use arcade::sim;
use arcade_bench::{fmt6, Table};

fn main() {
    let def = dds();
    let t = FIVE_WEEKS_H;

    let modular = modular_analysis(&def, &EngineOptions::new()).expect("DDS analysis");
    let a = modular.steady_state_availability();
    let r = modular.reliability(t);

    let r_static = analytic::static_reliability(&def.without_repair(), t).expect("static FT");
    let a_indep = analytic::independent_availability(&def).expect("independent availability");

    let mc = sim::simulate_unreliability(&def, t, 60_000, 2008, false).expect("simulation");

    let mut table = Table::new(&[
        "Measure",
        "Arcade",
        "MC-sim (SAN role)",
        "analytic (Galileo role)",
    ]);
    table.row(&["A".into(), fmt6(a), "-".into(), fmt6(a_indep)]);
    table.row(&[
        "R(5 weeks)".into(),
        fmt6(r),
        format!("{:.4} ± {:.4}", 1.0 - mc.mean, mc.half_width),
        fmt6(r_static),
    ]);
    println!("Table 1 — dependability analysis for DDS (t = {t} h)");
    println!("{}", table.render());
    println!("paper:  A = 0.999997 (Arcade, SAN)   R = 0.402018 (Arcade, Galileo), 0.425082 (SAN)");
    println!();

    let ok_a = (a - 0.999997).abs() < 5e-7;
    let ok_r = (r - 0.402018).abs() < 5e-4;
    let ok_mc = ((1.0 - mc.mean) - r).abs() <= mc.half_width + 1e-12;
    println!("availability matches paper to 6 decimals: {ok_a}");
    println!("reliability matches paper (±5e-4):        {ok_r}");
    println!("MC interval contains the Arcade value:    {ok_mc}");
    assert!(ok_a && ok_r && ok_mc, "Table 1 reproduction drifted");
}
