//! Experiment A3 — quantifies the paper's §3.2 remark that "the I/O-IMC
//! models of the FCFS, PP, and PNP can get quite large with increasing
//! number of components … the RU needs to keep track of the failing
//! components and the order in which the failures occurred".
//!
//! Run: `cargo run --release -p arcade-bench --bin exp_ru_growth`

use arcade::ast::{BcDef, RepairStrategy, RuDef, SystemDef};
use arcade::dist::Dist;
use arcade::expr::Expr;
use arcade::model::SystemModel;
use arcade_bench::Table;

fn ru_states(n: usize, strategy: RepairStrategy) -> usize {
    let mut def = SystemDef::new("growth");
    let names: Vec<String> = (0..n).map(|i| format!("c{i}")).collect();
    for name in &names {
        def.add_component(BcDef::new(name, Dist::exp(0.01), Dist::exp(1.0)));
    }
    let mut ru = RuDef::new("ru", names, strategy);
    if matches!(
        strategy,
        RepairStrategy::PreemptivePriority | RepairStrategy::NonPreemptivePriority
    ) {
        ru = ru.with_priorities((1..=n as u32).collect::<Vec<_>>());
    }
    def.add_repair_unit(ru);
    def.set_system_down(Expr::down("c0"));
    let model = SystemModel::build(&def).expect("model");
    model.block("ru").expect("ru block").imc.num_states()
}

fn main() {
    println!("repair unit I/O-IMC size vs number of served components (§3.2):");
    println!();
    let mut table = Table::new(&["n", "FCFS", "PNP", "PP", "n dedicated units"]);
    for n in 1..=6usize {
        table.row(&[
            n.to_string(),
            ru_states(n, RepairStrategy::Fcfs).to_string(),
            ru_states(n, RepairStrategy::NonPreemptivePriority).to_string(),
            ru_states(n, RepairStrategy::PreemptivePriority).to_string(),
            (n * ru_states(1, RepairStrategy::Dedicated)).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("FCFS/PNP grow like ordered subsets (sum_k n!/(n-k)!); PP grows like");
    println!("subsets with a phase per member; dedicated units stay linear — the");
    println!("trade-off the paper points out when discussing Fig. 7.");
}
