//! Experiment S1 — regenerates the state-space numbers of §5.1.2: the size
//! of the final DDS CTMC, the largest intermediate I/O-IMC encountered
//! during compositional aggregation, and the flat-composition comparison
//! (the paper compares against the 16,695-state flat SAN model of \[19\]) —
//! plus the batched unavailability curve over the mission time, answered
//! by one `Session` sweep instead of a per-point scalar loop.
//!
//! Run: `cargo run --release -p arcade-bench --bin exp_dds_statespace`

use arcade::cases::dds::{dds, FIVE_WEEKS_H};
use arcade::engine::EngineOptions;
use arcade::model::SystemModel;
use arcade::query::{Measure, Session};
use arcade_bench::{run_engine, Table};
use bisim::Strategy;
use ctmc::transient::{dtmc_steps_performed, reset_solver_counters};

fn main() {
    let def = dds();
    let model = SystemModel::build(&def).expect("DDS model");
    println!(
        "DDS model: {} blocks ({} components, {} repair units, {} SMU, gates + observer)",
        model.blocks.len(),
        def.components.len(),
        def.repair_units.len(),
        def.smus.len(),
    );
    println!();

    // Full compositional aggregation of the entire system (no
    // modularization) — the configuration the paper reports.
    let agg = run_engine(&def, &EngineOptions::new()).expect("aggregation");

    // Step-by-step log of the aggregation.
    println!("composition steps (composed -> reduced):");
    for s in &agg.steps {
        println!(
            "  + {:<14} {:>8} st / {:>9} tr  ->  {:>7} st / {:>8} tr",
            s.block,
            s.composed.states,
            s.composed.transitions(),
            s.reduced.states,
            s.reduced.transitions()
        );
    }
    println!();

    let mut table = Table::new(&["quantity", "this work", "paper"]);
    table.row(&[
        "final CTMC states".into(),
        agg.ctmc_stats.states.to_string(),
        "2,100".into(),
    ]);
    table.row(&[
        "final CTMC transitions".into(),
        agg.ctmc_stats.transitions().to_string(),
        "15,120".into(),
    ]);
    table.row(&[
        "largest intermediate states".into(),
        agg.largest_intermediate.states.to_string(),
        "6,522".into(),
    ]);
    table.row(&[
        "largest intermediate transitions".into(),
        agg.largest_intermediate.transitions().to_string(),
        "33,486".into(),
    ]);
    println!("{}", table.render());
    println!("flat SAN model of [19]: 16,695 states (no compositional reduction)");
    println!();

    // Ablation: composing *without* intermediate reduction explodes
    // combinatorially — exactly the state-space explosion the paper's
    // compositional aggregation combats. The full DDS is intractable flat
    // (the true product exceeds 10^12 states), so the ablation runs on the
    // processor subsystem alone, where the flat product is still
    // enumerable, and reports the peak ratio.
    let mini = processor_subsystem();
    let comp = run_engine(&mini, &EngineOptions::new()).expect("mini compositional");
    let flat = run_engine(
        &mini,
        &EngineOptions {
            strategy: Strategy::Branching,
            reduce_intermediate: false,
            ..EngineOptions::new()
        },
    )
    .expect("mini flat");
    println!(
        "ablation (processor subsystem only): flat peak {} st / {} tr vs \
         compositional peak {} st / {} tr ({:.1}x)",
        flat.largest_intermediate.states,
        flat.largest_intermediate.transitions(),
        comp.largest_intermediate.states,
        comp.largest_intermediate.transitions(),
        flat.largest_intermediate.states as f64 / comp.largest_intermediate.states as f64
    );
    println!("(the full 33-block DDS cannot be composed flat at all — the paper's point)");
    println!();

    // Unavailability curve over the 5-week mission, answered as ONE
    // batched query: the session reuses the aggregation above's
    // configuration work lazily and runs a single uniformization sweep
    // for the whole 50-point grid.
    let session = Session::new(&def).expect("valid DDS");
    let grid: Vec<f64> = (1..=50)
        .map(|k| FIVE_WEEKS_H * f64::from(k) / 50.0)
        .collect();
    let batch: Vec<Measure> = grid
        .iter()
        .map(|&t| Measure::PointUnavailability(t))
        .collect();
    reset_solver_counters();
    let curve = session.evaluate(&batch).expect("curve");
    let batched_steps = dtmc_steps_performed();
    println!("unavailability curve over [0, 5 weeks] (50 points, one batched sweep):");
    for (i, (&t, &u)) in grid.iter().zip(&curve).enumerate() {
        if i % 10 == 9 {
            println!("  U({t:>6.1} h) = {u:.6e}");
        }
    }
    reset_solver_counters();
    let ctmc = &session.availability_model().expect("built").ctmc;
    for &t in &grid {
        let _ = ctmc::transient::transient(ctmc, t);
    }
    let scalar_steps = dtmc_steps_performed();
    println!(
        "batched sweep: {batched_steps} DTMC steps vs scalar loop: {scalar_steps} \
         ({:.1}x less work)",
        scalar_steps as f64 / batched_steps as f64
    );
}

/// The DDS processor subsystem: pp + spare ps + SMU + shared FCFS RU.
fn processor_subsystem() -> arcade::ast::SystemDef {
    use arcade::ast::{BcDef, OmGroup, RepairStrategy, RuDef, SmuDef, SystemDef};
    use arcade::dist::Dist;
    use arcade::expr::Expr;
    let mut def = SystemDef::new("dds-procs");
    def.add_component(BcDef::new("pp", Dist::exp(1.0 / 2000.0), Dist::exp(1.0)));
    def.add_component(
        BcDef::new("ps", Dist::exp(1.0 / 2000.0), Dist::exp(1.0))
            .with_om_group(OmGroup::ActiveInactive)
            .with_ttf([Dist::exp(1.0 / 2000.0), Dist::exp(1.0 / 2000.0)]),
    );
    def.add_smu(SmuDef::new("p.smu", "pp", ["ps"]));
    def.add_repair_unit(RuDef::new("p.rep", ["pp", "ps"], RepairStrategy::Fcfs));
    def.set_system_down(Expr::and([Expr::down("pp"), Expr::down("ps")]));
    def
}
