//! `serve_bench` — load-tests an **in-process** `arcaded` server and
//! writes `BENCH_serve.json`.
//!
//! ```text
//! serve_bench [--smoke] [--threads N] [--workers N]
//! ```
//!
//! Four phases, all against one server started on a loopback ephemeral
//! port inside this process (no daemon management, no port races):
//!
//! 1. **Cold + dedup** — 8 clients synchronize on a barrier and fire the
//!    *same* query at a cold `rcs_scaled(2)` (83 808 states, ~seconds of
//!    compositional aggregation). Exactly one request may run the
//!    aggregation; the others must block on the in-flight build. Gated:
//!    `builders == 1`, `waiters >= 1`, `aggregations_built == 1`.
//! 2. **Warm** — the same query repeated against the now-warm session.
//!    Gated: the cold wall time must be ≥ 50× the median warm wall time
//!    (the whole point of a resident server).
//! 3. **Throughput** — 4 clients hammer mixed warm queries (DDS + RCS,
//!    different measure batches); reports requests/s and client-side
//!    p50/p99.
//! 4. **Robustness** — a chaos failpoint delays one cold build
//!    (`session.agg`) while a second client measures warm-query latency
//!    the whole time the delayed build is in flight. Gated: the delay
//!    demonstrably fired, and the warm p50 stays far below the injected
//!    delay — a stuck build must not block warm traffic.
//!
//! `--smoke` shrinks phase 3 (CI wall clock); the other phases always
//! run in full because they carry the gates. The report is written
//! atomically — a crashed run never leaves a truncated
//! `BENCH_serve.json`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use arcade::serve::{serve, Client, Json, ServerConfig};
use arcade_bench::write_atomic;

/// Version of the `BENCH_serve.json` report layout (independent of the
/// wire protocol's version). v2 added the `robustness` section and the
/// containment counters inside `server`.
const BENCH_SCHEMA_VERSION: u32 = 2;

/// One client-side request timing in microseconds.
fn us(from: Instant) -> u64 {
    u64::try_from(from.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    // Benchmarks must measure the real server: refuse to run if the
    // environment (e.g. ARCADE_CHAOS) armed any chaos failpoint.
    assert!(
        !arcade::chaos::enabled(),
        "serve_bench refuses to run with chaos failpoints armed; \
         unset ARCADE_CHAOS"
    );
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(|v| {
                v.parse::<usize>()
                    .unwrap_or_else(|_| panic!("{name} must be an integer"))
            })
    };
    let threads = flag("--threads").unwrap_or(0);
    let workers = flag("--workers").unwrap_or(8);

    let mut config = ServerConfig {
        workers,
        ..ServerConfig::default()
    };
    config.engine.threads = threads;
    config.engine.solver.transient.threads = threads;
    let handle = serve(config).expect("start in-process server");
    let addr = handle.local_addr().to_string();
    println!("serve_bench: in-process server on {addr} (workers {workers}, threads {threads})");

    // ---- Phase 1: cold + dedup ------------------------------------------
    const COLD_CLIENTS: usize = 8;
    let query = Json::obj([
        ("model", Json::str("rcs_scaled(2)")),
        (
            "measures",
            Json::Arr(vec![Json::str("steady_state_unavailability")]),
        ),
    ]);
    let barrier = Barrier::new(COLD_CLIENTS);
    let builders = AtomicU64::new(0);
    let waiters = AtomicU64::new(0);
    let hits = AtomicU64::new(0);
    let cold_us = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..COLD_CLIENTS {
            s.spawn(|| {
                let mut client = Client::connect(&addr).expect("connect");
                barrier.wait();
                let t0 = Instant::now();
                let response = client.expect_ok(&query).expect("cold query succeeds");
                let wall = us(t0);
                let trace = response.get("trace").expect("query reports a trace");
                let built = trace.get("built").and_then(Json::as_f64).unwrap_or(0.0);
                let waited = trace.get("waited").and_then(Json::as_f64).unwrap_or(0.0);
                if built > 0.0 {
                    builders.fetch_add(1, Ordering::Relaxed);
                    cold_us.store(wall, Ordering::Relaxed);
                } else if waited > 0.0 {
                    waiters.fetch_add(1, Ordering::Relaxed);
                } else {
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let cold_wall_secs = started.elapsed().as_secs_f64();
    let (builders, waiters, hits) = (
        builders.into_inner(),
        waiters.into_inner(),
        hits.into_inner(),
    );
    let cold_us = cold_us.into_inner();
    println!(
        "phase 1 (cold, {COLD_CLIENTS} concurrent clients): {builders} built, \
         {waiters} waited on the in-flight build, {hits} warm — {cold_wall_secs:.2} s"
    );
    assert_eq!(
        builders, 1,
        "dedup violated: {builders} of {COLD_CLIENTS} concurrent cold queries ran the build"
    );
    assert!(
        waiters >= 1,
        "dedup not demonstrated: no query blocked on the in-flight build"
    );

    // The session must report exactly one aggregation after all that.
    let mut probe = Client::connect(&addr).expect("connect");
    let stats = probe.stats().expect("stats");
    let aggs = stats
        .get("models")
        .and_then(Json::as_arr)
        .and_then(|ms| ms.first())
        .and_then(|m| m.get("stats"))
        .and_then(|s| s.get("aggregations_built"))
        .and_then(Json::as_f64)
        .expect("stats report aggregations_built");
    assert_eq!(aggs, 1.0, "expected exactly one aggregation, saw {aggs}");

    // ---- Phase 2: warm repeats ------------------------------------------
    let warm_reps = if smoke { 20 } else { 200 };
    let mut warm: Vec<u64> = Vec::with_capacity(warm_reps);
    let mut warm_values: Option<Vec<f64>> = None;
    for _ in 0..warm_reps {
        let t0 = Instant::now();
        let response = probe.expect_ok(&query).expect("warm query succeeds");
        warm.push(us(t0));
        assert_eq!(
            response.get("cold"),
            Some(&Json::Bool(false)),
            "repeat query must be warm"
        );
        let values = Client::values(&response).expect("values");
        match &warm_values {
            None => warm_values = Some(values),
            // Warm answers are served from the same cached artifacts —
            // bitwise stability across repeats is part of the contract.
            Some(first) => assert_eq!(first, &values, "warm values drifted between repeats"),
        }
    }
    warm.sort_unstable();
    let warm_p50 = quantile(&warm, 0.50);
    let warm_p99 = quantile(&warm, 0.99);
    let ratio = cold_us as f64 / warm_p50.max(1) as f64;
    println!(
        "phase 2 (warm, {warm_reps} reps): p50 {warm_p50} µs, p99 {warm_p99} µs — \
         cold/warm ratio {ratio:.0}x (cold {cold_us} µs)"
    );
    assert!(
        ratio >= 50.0,
        "resident-server speedup gate failed: cold {cold_us} µs is only {ratio:.1}x \
         the warm p50 of {warm_p50} µs (need ≥ 50x)"
    );

    // ---- Phase 3: mixed warm throughput ---------------------------------
    const THROUGHPUT_CLIENTS: usize = 4;
    let per_client = if smoke { 25 } else { 250 };
    let mixed = [
        Json::obj([
            ("model", Json::str("dds")),
            (
                "measures",
                Json::Arr(vec![Json::str("unavailability"), Json::str("mttf")]),
            ),
            (
                "times",
                Json::Arr(vec![Json::Num(10.0), Json::Num(100.0), Json::Num(1000.0)]),
            ),
        ]),
        Json::obj([
            ("model", Json::str("rcs_scaled(2)")),
            (
                "measures",
                Json::Arr(vec![Json::str("steady_state_unavailability")]),
            ),
        ]),
        Json::obj([
            ("model", Json::str("dds")),
            (
                "measures",
                Json::Arr(vec![Json::obj([
                    ("kind", Json::str("reliability")),
                    ("t", Json::Num(500.0)),
                ])]),
            ),
        ]),
    ];
    // Warm every model the mix touches so phase 3 measures routing, not
    // builds.
    for q in &mixed {
        probe.expect_ok(q).expect("warm-up query succeeds");
    }
    let t0 = Instant::now();
    let lat: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THROUGHPUT_CLIENTS)
            .map(|c| {
                let mixed = &mixed;
                let addr = &addr;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut lat = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let q = &mixed[(c + i) % mixed.len()];
                        let t = Instant::now();
                        client.expect_ok(q).expect("mixed query succeeds");
                        lat.push(us(t));
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let total_secs = t0.elapsed().as_secs_f64();
    let mut lat = lat;
    lat.sort_unstable();
    let n = lat.len();
    let throughput = n as f64 / total_secs;
    let (tp50, tp99) = (quantile(&lat, 0.50), quantile(&lat, 0.99));
    println!(
        "phase 3 (mixed warm, {THROUGHPUT_CLIENTS} clients x {per_client} reqs): \
         {throughput:.0} req/s, p50 {tp50} µs, p99 {tp99} µs"
    );

    // ---- Phase 4: warm latency under a chaos-delayed cold build ---------
    let chaos_delay_ms: u64 = 300;
    arcade::chaos::arm(
        "session.agg",
        arcade::chaos::Action::Delay(chaos_delay_ms),
        Some(1),
    );
    let delayed_query = Json::obj([
        ("model", Json::str("dds_scaled(3)")),
        (
            "measures",
            Json::Arr(vec![Json::str("steady_state_unavailability")]),
        ),
    ]);
    let cold_done = AtomicBool::new(false);
    let (chaos_cold_us, warm_chaos): (u64, Vec<u64>) = std::thread::scope(|s| {
        let cold = s.spawn(|| {
            let mut client = Client::connect(&addr).expect("connect");
            let t0 = Instant::now();
            client
                .expect_ok(&delayed_query)
                .expect("chaos-delayed cold build succeeds");
            let wall = us(t0);
            cold_done.store(true, Ordering::Release);
            wall
        });
        // Hammer warm queries for the entire lifetime of the delayed
        // build — this is the latency a well-behaved client sees while
        // some other request is stuck in a slow aggregation.
        let mut client = Client::connect(&addr).expect("connect");
        let mut lat = Vec::new();
        while !cold_done.load(Ordering::Acquire) || lat.is_empty() {
            let t = Instant::now();
            client
                .expect_ok(&query)
                .expect("warm query under chaos succeeds");
            lat.push(us(t));
        }
        (cold.join().expect("cold client thread"), lat)
    });
    arcade::chaos::disarm_all();
    let mut warm_chaos = warm_chaos;
    warm_chaos.sort_unstable();
    let (wc_p50, wc_p99) = (quantile(&warm_chaos, 0.50), quantile(&warm_chaos, 0.99));
    println!(
        "phase 4 (robustness): cold build delayed {chaos_delay_ms} ms took \
         {chaos_cold_us} µs; {} concurrent warm queries — p50 {wc_p50} µs, p99 {wc_p99} µs",
        warm_chaos.len()
    );
    assert!(
        chaos_cold_us >= chaos_delay_ms * 1000,
        "injected delay did not fire: delayed cold build took only {chaos_cold_us} µs"
    );
    assert!(
        wc_p50 < chaos_delay_ms * 1000,
        "warm queries blocked behind a delayed cold build: p50 {wc_p50} µs \
         vs a {chaos_delay_ms} ms injected delay"
    );

    // ---- Server-side view + report --------------------------------------
    let stats = probe.stats().expect("final stats");
    let server = stats.get("server").expect("server section").clone();
    for counter in [
        "panics_caught",
        "deadline_aborts",
        "budget_aborts",
        "retries",
    ] {
        assert!(
            server.get(counter).is_some(),
            "stats missing robustness counter `{counter}`"
        );
    }
    handle.shutdown();
    handle.join();

    let report = Json::obj([
        ("bench", Json::str("serve")),
        ("schema_version", Json::Num(f64::from(BENCH_SCHEMA_VERSION))),
        ("smoke", Json::Bool(smoke)),
        ("workers", Json::Num(workers as f64)),
        ("engine_threads", Json::Num(threads as f64)),
        (
            "cold",
            Json::obj([
                ("model", Json::str("rcs_scaled(2)")),
                ("clients", Json::Num(COLD_CLIENTS as f64)),
                ("builders", Json::Num(builders as f64)),
                ("dedup_waiters", Json::Num(waiters as f64)),
                ("warm_hits", Json::Num(hits as f64)),
                ("cold_us", Json::Num(cold_us as f64)),
            ]),
        ),
        (
            "warm",
            Json::obj([
                ("reps", Json::Num(warm_reps as f64)),
                ("p50_us", Json::Num(warm_p50 as f64)),
                ("p99_us", Json::Num(warm_p99 as f64)),
                ("cold_over_warm", Json::Num(ratio)),
            ]),
        ),
        (
            "throughput",
            Json::obj([
                ("clients", Json::Num(THROUGHPUT_CLIENTS as f64)),
                ("requests", Json::Num(n as f64)),
                ("secs", Json::Num(total_secs)),
                ("req_per_sec", Json::Num(throughput)),
                ("p50_us", Json::Num(tp50 as f64)),
                ("p99_us", Json::Num(tp99 as f64)),
            ]),
        ),
        (
            "robustness",
            Json::obj([
                ("chaos_delay_ms", Json::Num(chaos_delay_ms as f64)),
                ("delayed_cold_model", Json::str("dds_scaled(3)")),
                ("delayed_cold_us", Json::Num(chaos_cold_us as f64)),
                ("warm_reqs_during_build", Json::Num(warm_chaos.len() as f64)),
                ("warm_p50_us", Json::Num(wc_p50 as f64)),
                ("warm_p99_us", Json::Num(wc_p99 as f64)),
            ]),
        ),
        ("server", server),
    ]);
    let path = "BENCH_serve.json";
    let mut text = report.to_string();
    text.push('\n');
    write_atomic(path, &text).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
