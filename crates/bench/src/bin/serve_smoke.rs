//! `serve_smoke` — CI smoke client for a running `arcaded` daemon.
//!
//! ```text
//! serve_smoke --addr HOST:PORT [--shutdown]
//! ```
//!
//! Exercises a real daemon over the wire (CI boots `arcaded` in the
//! background and points this at it):
//!
//! * `ping`, `list`;
//! * a **cold** query (`dds_scaled(2)`, mixed measure batch) — must
//!   report `cold: true` on a fresh daemon;
//! * the same query again — must report `cold: false` and be faster;
//! * **bitwise cross-check**: the daemon's values must be identical (not
//!   just close) to evaluating the same expanded measure batch on a
//!   direct in-process [`arcade::query::Session`] — the server adds
//!   routing, not math;
//! * protocol edge cases: malformed JSON, unknown model, empty measures,
//!   an oversized request line — each answered with the right structured
//!   error, and the daemon must keep serving afterwards;
//! * `stats` — counters must reflect the traffic above;
//! * with `--shutdown`: asks the daemon to exit gracefully.
//!
//! Exits non-zero (panics) on the first violated expectation.

use std::time::{Duration, Instant};

use arcade::query::Session;
use arcade::serve::{expand_measures, Client, Json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
        .expect("usage: serve_smoke --addr HOST:PORT [--shutdown]")
        .clone();
    let shutdown = args.iter().any(|a| a == "--shutdown");

    let mut client =
        Client::connect_retry(&addr, Duration::from_secs(30)).expect("daemon reachable");
    println!("serve_smoke: connected to {addr}");

    // Liveness + registry listing.
    client.ping().expect("ping");
    let list = client
        .expect_ok(&Json::obj([("cmd", Json::str("list"))]))
        .expect("list");
    let names = list.get("models").and_then(Json::as_arr).expect("models");
    assert!(
        names.iter().any(|n| n.as_str() == Some("dds")),
        "built-in dds missing from list"
    );

    // Cold query on a model nothing has touched yet.
    let query = Json::obj([
        ("model", Json::str("dds_scaled(2)")),
        (
            "measures",
            Json::Arr(vec![
                Json::str("steady_state_unavailability"),
                Json::str("mttf"),
                Json::str("unavailability"),
            ]),
        ),
        (
            "times",
            Json::Arr(vec![Json::Num(10.0), Json::Num(100.0), Json::Num(1000.0)]),
        ),
    ]);
    let t_cold = Instant::now();
    let cold = client.expect_ok(&query).expect("cold query");
    let cold_secs = t_cold.elapsed().as_secs_f64();
    assert_eq!(
        cold.get("cold"),
        Some(&Json::Bool(true)),
        "first query on a fresh daemon must be cold"
    );
    let cold_values = Client::values(&cold).expect("cold values");
    assert_eq!(cold_values.len(), 5, "2 timeless + 1 timed kind x 3 times");

    // Warm repeat: served from cache, same bits, faster.
    let t_warm = Instant::now();
    let warm = client.expect_ok(&query).expect("warm query");
    let warm_secs = t_warm.elapsed().as_secs_f64();
    assert_eq!(
        warm.get("cold"),
        Some(&Json::Bool(false)),
        "repeat must be warm"
    );
    let warm_values = Client::values(&warm).expect("warm values");
    assert_eq!(
        cold_values, warm_values,
        "cold and warm answers must be identical"
    );
    println!("serve_smoke: cold {cold_secs:.3} s, warm {warm_secs:.4} s");
    assert!(
        warm_secs < cold_secs,
        "warm repeat ({warm_secs:.4} s) not faster than cold ({cold_secs:.3} s)"
    );

    // Bitwise cross-check against a direct in-process session evaluating
    // the *same* expanded batch.
    let measures = expand_measures(&query).expect("expand the smoke batch");
    let def = arcade::cases::dds_scaled(2);
    let session = Session::new(&def).expect("direct session");
    let direct = session.evaluate(&measures).expect("direct evaluate");
    assert_eq!(
        direct.len(),
        warm_values.len(),
        "direct and served batch sizes differ"
    );
    for (i, (a, b)) in direct.iter().zip(&warm_values).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "measure {i}: served value {b:e} is not bitwise identical to direct {a:e}"
        );
    }
    println!(
        "serve_smoke: {} served values bitwise identical to direct evaluation",
        direct.len()
    );

    // Protocol edge cases — each must answer a structured error and leave
    // the daemon serving.
    let e = client
        .roundtrip(&Json::obj([
            ("model", Json::str("nope")),
            ("measures", Json::Arr(vec![Json::str("mttf")])),
        ]))
        .expect("roundtrip");
    assert_eq!(error_code(&e), Some("unknown_model"), "{e}");
    let e = client
        .roundtrip(&Json::obj([
            ("model", Json::str("dds")),
            ("measures", Json::Arr(vec![])),
        ]))
        .expect("roundtrip");
    assert_eq!(error_code(&e), Some("bad_request"), "{e}");
    // Malformed JSON needs a raw socket line (the typed client only sends
    // valid objects).
    {
        use std::io::{BufRead, BufReader, Write};
        let mut raw = std::net::TcpStream::connect(&addr).expect("raw connect");
        raw.write_all(b"this is not json\n").expect("write");
        let mut line = String::new();
        BufReader::new(raw.try_clone().expect("clone"))
            .read_line(&mut line)
            .expect("read");
        let v = Json::parse(line.trim_end()).expect("error response parses");
        assert_eq!(error_code(&v), Some("bad_json"), "{v}");
        // Oversized line: the server errors, then closes this connection.
        let big = vec![b'x'; 2 << 20];
        raw.write_all(&big).expect("write oversized");
        raw.write_all(b"\n").expect("newline");
        let mut line = String::new();
        BufReader::new(raw)
            .read_line(&mut line)
            .expect("read oversized error");
        let v = Json::parse(line.trim_end()).expect("oversized response parses");
        assert_eq!(error_code(&v), Some("oversized"), "{v}");
    }
    // The persistent client connection still works after all that.
    client
        .ping()
        .expect("daemon still serving after edge cases");

    // Stats must reflect the traffic: the cold query was a miss, the warm
    // repeat a hit.
    let stats = client.stats().expect("stats");
    let server = stats.get("server").expect("server section");
    let counter = |name: &str| {
        server
            .get(name)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("stats missing {name}"))
    };
    assert!(counter("requests") >= 5.0, "requests counter too low");
    assert!(
        counter("cache_misses") >= 1.0,
        "cold query must count as a miss"
    );
    assert!(
        counter("cache_hits") >= 1.0,
        "warm query must count as a hit"
    );
    assert!(counter("errors") >= 3.0, "edge cases must count as errors");
    println!(
        "serve_smoke: stats ok — {} requests, {} hits / {} misses / {} dedup waits, {} errors",
        counter("requests"),
        counter("cache_hits"),
        counter("cache_misses"),
        counter("dedup_waits"),
        counter("errors"),
    );

    if shutdown {
        client.shutdown().expect("shutdown acknowledged");
        println!("serve_smoke: daemon acknowledged shutdown");
    }
    println!("serve_smoke: OK");
}

fn error_code(v: &Json) -> Option<&str> {
    assert_eq!(
        v.get("ok"),
        Some(&Json::Bool(false)),
        "expected an error response, got {v}"
    );
    v.get("error")?.get("code")?.as_str()
}
