//! Benchmarks and experiment drivers for the Arcade reproduction.
//!
//! Each `exp_*` binary regenerates one table or figure of the paper (see
//! the experiment index in `DESIGN.md`); the Criterion benches under
//! `benches/` measure the runtime of the pipeline stages. Shared helpers
//! live here.

use arcade::ast::SystemDef;
use arcade::engine::{aggregate, Aggregation, EngineOptions};
use arcade::error::ArcadeError;
use arcade::model::SystemModel;

/// Builds and aggregates `def` with the given options, returning the
/// aggregation result.
///
/// # Errors
///
/// Propagates any model/engine error.
pub fn run_engine(def: &SystemDef, opts: &EngineOptions) -> Result<Aggregation, ArcadeError> {
    let model = SystemModel::build(def)?;
    aggregate(&model, opts)
}

/// Formats a float in the paper's style (6 decimals).
pub fn fmt6(x: f64) -> String {
    format!("{x:.6}")
}

/// A plain-text table writer for experiment outputs.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["availability".into(), "0.999997".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("0.999997"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn fmt6_rounds() {
        assert_eq!(fmt6(0.4020184), "0.402018");
    }
}
