//! Benchmarks and experiment drivers for the Arcade reproduction.
//!
//! Each `exp_*` binary regenerates one table or figure of the paper (see
//! the experiment index in `DESIGN.md`); the plain-harness benches under
//! `benches/` measure the runtime of the pipeline stages with the
//! dependency-free [`bench`] helper. Shared helpers live here.

use arcade::ast::SystemDef;
use arcade::engine::{aggregate, Aggregation, EngineOptions};
use arcade::error::ArcadeError;
use arcade::model::SystemModel;

/// Builds and aggregates `def` with the given options, returning the
/// aggregation result.
///
/// # Errors
///
/// Propagates any model/engine error.
pub fn run_engine(def: &SystemDef, opts: &EngineOptions) -> Result<Aggregation, ArcadeError> {
    let model = SystemModel::build(def)?;
    aggregate(&model, opts)
}

/// Formats a float in the paper's style (6 decimals).
pub fn fmt6(x: f64) -> String {
    format!("{x:.6}")
}

/// Times `f` over `iters` iterations after one warm-up run and prints a
/// `name  best  mean` line (dependency-free stand-in for a bench harness).
/// Returns the mean per-iteration time in seconds.
pub fn bench<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let iters = iters.max(1);
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    let start = std::time::Instant::now();
    for _ in 0..iters {
        let one = std::time::Instant::now();
        std::hint::black_box(f());
        best = best.min(one.elapsed().as_secs_f64());
    }
    let mean = start.elapsed().as_secs_f64() / iters as f64;
    println!(
        "{name:<42} best {:>10}  mean {:>10}",
        fmt_time(best),
        fmt_time(mean)
    );
    mean
}

/// Writes `contents` to `path` atomically: the bytes go to a temporary
/// sibling file first, which is then renamed over the target. A reader
/// (or an interrupted run) never observes a half-written bench file.
///
/// # Errors
///
/// Any I/O error from writing or renaming.
pub fn write_atomic(path: &str, contents: &str) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp.{}", std::process::id());
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{:.1} µs", secs * 1e6)
    }
}

/// A plain-text table writer for experiment outputs.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["availability".into(), "0.999997".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("0.999997"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn fmt6_rounds() {
        assert_eq!(fmt6(0.4020184), "0.402018");
    }
}
