//! Planted-bug regression for the fuzzing pipeline: a deterministic
//! stand-in for a buggy oracle drives [`shrink_system`] end to end —
//! generation, reduction to a known minimal shape, and the committed
//! evidence artifact — without depending on any real engine defect
//! (those get fixed, and the test must keep running afterwards).
//!
//! The planted predicate declares a "disagreement" whenever the model
//! contains a multi-failure-mode component, mimicking an oracle that
//! mis-rates mode-split transitions. Shrinking under it must strip
//! everything else and leave exactly one multi-mode component.

use arcade::ast::SystemDef;
use arcade::fuzz::{
    gen_system, shrink_system, Disagreement, Evidence, GenConfig, OraclePair, SCHEMA_VERSION,
};
use arcade::model::validate;
use arcade::parser::parse_system;
use arcade::printer::to_arcade_text;
use arcade::serve::Json;
use arcade_bench::write_atomic;
use smallrand::SmallRng;

/// The planted bug: "the oracles disagree" iff some component splits its
/// failures over more than one mode.
fn planted(def: &SystemDef) -> bool {
    def.components
        .iter()
        .any(|bc| bc.failure_mode_probs.len() > 1)
}

/// Deterministic walk to the first seed whose generated model trips the
/// planted predicate.
fn first_failing_model() -> (u64, SystemDef) {
    let cfg = GenConfig::engine();
    for seed in 0x5EED0..0x5EED0 + 256 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let def = gen_system(&mut rng, &cfg);
        if planted(&def) {
            return (seed, def);
        }
    }
    panic!("no generated model with a multi-mode component in 256 seeds");
}

#[test]
fn planted_bug_shrinks_to_one_multi_mode_component() {
    let (_, def) = first_failing_model();
    let outcome = shrink_system(&def, planted);

    // The minimum the candidate set admits: one component carrying the
    // predicate-relevant feature, everything orthogonal stripped.
    assert_eq!(outcome.def.components.len(), 1, "{:#?}", outcome.def);
    let bc = &outcome.def.components[0];
    assert!(
        bc.failure_mode_probs.len() > 1,
        "shrink lost the planted feature"
    );
    assert!(bc.df.is_none(), "FDEP not stripped");
    assert!(bc.om_groups.is_empty(), "OM groups not stripped");
    assert!(outcome.def.smus.is_empty(), "SMUs not stripped");
    assert!(outcome.def.params.is_empty(), "params not stripped");
    assert!(outcome.steps > 0, "nothing was reduced");
    assert!(outcome.checks >= outcome.steps);
    validate(&outcome.def).expect("minimal model still valid");
}

#[test]
fn planted_bug_minimum_is_deterministic() {
    let (_, def) = first_failing_model();
    let a = shrink_system(&def, planted);
    let b = shrink_system(&def, planted);
    assert_eq!(a.def, b.def, "minimal model differs between runs");
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.checks, b.checks);
    // The minimal model survives a text round trip bitwise (up to the
    // system name, which the printer emits only as a comment).
    let text = to_arcade_text(&a.def);
    let mut back = parse_system(&text).expect("minimal model parses back");
    back.name = a.def.name.clone();
    assert_eq!(to_arcade_text(&back), text);
}

#[test]
fn evidence_artifact_writes_atomically_and_reparses() {
    let (seed, def) = first_failing_model();
    let outcome = shrink_system(&def, planted);
    let evidence = Evidence {
        seed,
        iteration: 0,
        disagreement: Disagreement {
            pair: OraclePair::Modular,
            measure: "steady_state_unavailability".to_owned(),
            primary: 0.25,
            oracle: 0.5,
            tolerance: 1e-7,
        },
        original: to_arcade_text(&def),
        minimal: to_arcade_text(&outcome.def),
        shrink_steps: outcome.steps,
        shrink_checks: outcome.checks,
    };

    let dir = std::env::temp_dir().join(format!("fuzz_shrink_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    let path = dir.join(evidence.file_name());
    let path = path.to_str().expect("utf-8 temp path");
    write_atomic(path, &evidence.to_json().to_string()).expect("commit evidence");

    let raw = std::fs::read_to_string(path).expect("read evidence back");
    let back = Json::parse(&raw).expect("evidence is valid JSON");
    assert_eq!(
        back.get("schema").and_then(Json::as_f64),
        Some(f64::from(SCHEMA_VERSION)),
        "consumers key on the schema version"
    );
    assert_eq!(back.get("seed").and_then(Json::as_f64), Some(seed as f64));
    let minimal = back
        .get("minimal_model")
        .and_then(Json::as_str)
        .expect("minimal model text");
    let reparsed = parse_system(minimal).expect("minimal model text parses");
    assert!(
        planted(&reparsed),
        "re-parsed minimal model no longer trips the planted predicate"
    );
    std::fs::remove_dir_all(&dir).ok();
}
