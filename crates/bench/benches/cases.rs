//! Criterion benchmarks of the paper's case studies (Table 1, §5.1–5.2)
//! and the A4 scaling sweep over the number of DDS disk clusters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use arcade::cases::dds::{dds_scaled, FIVE_WEEKS_H};
use arcade::cases::rcs::rcs;
use arcade::engine::EngineOptions;
use arcade::modular::modular_analysis;

fn bench_dds_modular(c: &mut Criterion) {
    let mut g = c.benchmark_group("dds");
    g.sample_size(10);
    let def = dds_scaled(6);
    g.bench_function("table1-modular", |b| {
        b.iter(|| {
            let m = modular_analysis(&def, &EngineOptions::new()).expect("dds");
            (
                m.steady_state_availability(),
                m.reliability(FIVE_WEEKS_H),
            )
        });
    });
    g.finish();
}

fn bench_dds_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("dds-scaling");
    g.sample_size(10);
    for clusters in [1usize, 2, 4, 6] {
        let def = dds_scaled(clusters);
        g.bench_with_input(
            BenchmarkId::new("clusters", clusters),
            &clusters,
            |b, _| {
                b.iter(|| {
                    modular_analysis(&def, &EngineOptions::new())
                        .expect("dds")
                        .steady_state_availability()
                });
            },
        );
    }
    g.finish();
}

fn bench_rcs(c: &mut Criterion) {
    let mut g = c.benchmark_group("rcs");
    g.sample_size(10);
    let def = rcs();
    g.bench_function("modular-50h", |b| {
        b.iter(|| {
            let m = modular_analysis(&def, &EngineOptions::new()).expect("rcs");
            (
                m.point_unavailability(50.0),
                m.unreliability_with_repair(50.0),
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench_dds_modular, bench_dds_scaling, bench_rcs);
criterion_main!(benches);
