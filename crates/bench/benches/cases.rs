//! Benchmarks of the paper's case studies (Table 1, §5.1–5.2) and the A4
//! scaling sweep over the number of DDS disk clusters.
//!
//! Run: `cargo bench -p arcade-bench --bench cases`

use arcade::cases::dds::{dds_scaled, FIVE_WEEKS_H};
use arcade::cases::rcs::rcs;
use arcade::engine::EngineOptions;
use arcade::modular::modular_analysis;
use arcade_bench::bench;

fn main() {
    // Table 1 measures through the modular analysis.
    let def = dds_scaled(6);
    bench("dds/table1-modular", 10, || {
        let m = modular_analysis(&def, &EngineOptions::new()).expect("dds");
        (m.steady_state_availability(), m.reliability(FIVE_WEEKS_H))
    });

    // Scaling sweep over the number of disk clusters.
    for clusters in [1usize, 2, 4, 6] {
        let def = dds_scaled(clusters);
        bench(&format!("dds-scaling/clusters/{clusters}"), 10, || {
            modular_analysis(&def, &EngineOptions::new())
                .expect("dds")
                .steady_state_availability()
        });
    }

    // RCS 50-hour measures.
    let def = rcs();
    bench("rcs/modular-50h", 10, || {
        let m = modular_analysis(&def, &EngineOptions::new()).expect("rcs");
        (
            m.point_unavailability(50.0),
            m.unreliability_with_repair(50.0),
        )
    });
}
