//! Benchmarks of the pipeline stages: block construction, parallel
//! composition, bisimulation reduction and CTMC solving — including the
//! batched uniformization kernels against their scalar per-point loops.
//!
//! Run: `cargo bench -p arcade-bench --bench pipeline`

use arcade::ast::{BcDef, RepairStrategy, RuDef, SystemDef};
use arcade::dist::Dist;
use arcade::expr::Expr;
use arcade::model::SystemModel;
use arcade_bench::bench;
use bisim::pipeline::{reduce, ReduceOptions, Strategy};
use ctmc::{measures, transient, Ctmc};
use ioimc::compose::parallel_all;

/// A chain of n repairable components sharing one FCFS repair unit, failing
/// as a k-of-n system — a tunable stress model.
fn chain(n: usize) -> SystemDef {
    let mut def = SystemDef::new(format!("chain{n}"));
    let names: Vec<String> = (0..n).map(|i| format!("c{i}")).collect();
    for name in &names {
        def.add_component(BcDef::new(name, Dist::exp(0.01), Dist::exp(1.0)));
    }
    def.add_repair_unit(RuDef::new("shop", names.clone(), RepairStrategy::Fcfs));
    def.set_system_down(Expr::k_of_n(
        (n as u32).div_ceil(2),
        names.iter().map(|n| Expr::down(n.clone())),
    ));
    def
}

/// Birth-death chain of `n` states for the solver benchmarks.
fn birth_death(n: u32) -> Ctmc {
    let rows: Vec<Vec<(f64, u32)>> = (0..n)
        .map(|i| {
            let mut row = Vec::new();
            if i + 1 < n {
                row.push((0.4, i + 1));
            }
            if i > 0 {
                row.push((1.0, i - 1));
            }
            row
        })
        .collect();
    let labels: Vec<u64> = (0..n).map(|i| u64::from(i > n / 2)).collect();
    Ctmc::new(rows, labels, 0).expect("ctmc")
}

fn main() {
    for n in [2usize, 3, 4] {
        let def = chain(n);
        bench(
            &format!("block-construction/elaborate-chain/{n}"),
            20,
            || SystemModel::build(&def).expect("build"),
        );
    }

    for n in [2usize, 3, 4] {
        let model = SystemModel::build(&chain(n)).expect("build");
        let automata: Vec<ioimc::IoImc> = model.blocks.iter().map(|b| b.imc.clone()).collect();
        bench(&format!("composition/parallel-all/{n}"), 10, || {
            parallel_all(&automata).expect("compose")
        });
    }

    let model = SystemModel::build(&chain(3)).expect("build");
    let automata: Vec<ioimc::IoImc> = model.blocks.iter().map(|b| b.imc.clone()).collect();
    let flat = parallel_all(&automata).expect("compose");
    for strategy in [Strategy::Strong, Strategy::Branching] {
        let opts = ReduceOptions {
            strategy,
            tau: model.tau,
        };
        bench(&format!("reduction/strategy/{strategy:?}"), 10, || {
            reduce(&flat, &opts)
        });
    }

    let chain500 = birth_death(500);
    bench("ctmc-solvers/steady-state-500", 10, || {
        measures::steady_state_availability(&chain500, 1)
    });
    bench("ctmc-solvers/transient-500-t100", 10, || {
        measures::point_availability(&chain500, 1, 100.0)
    });
    bench("ctmc-solvers/first-passage-500-t100", 10, || {
        measures::unreliability(&chain500, 1, 100.0)
    });

    // Batched curve kernels vs the scalar per-point loop: the win the
    // query engine's `Session` builds on. Wall time on this chain
    // understates it — scalar sweeps restart from a sparse unit vector
    // while the batched sweep carries a spread distribution, so the DTMC
    // step count is the honest hardware-independent metric.
    let grid: Vec<f64> = (1..=50).map(|k| f64::from(k) * 2.0).collect();
    transient::reset_solver_counters();
    let scalar = bench("curve/transient-scalar-50pts", 5, || {
        grid.iter()
            .map(|&t| transient::transient(&chain500, t))
            .collect::<Vec<_>>()
    });
    let scalar_steps = transient::dtmc_steps_performed() / 6; // warm-up + 5 iters
    transient::reset_solver_counters();
    let batched = bench("curve/transient-batched-50pts", 5, || {
        transient::transient_many(&chain500, &grid)
    });
    let batched_steps = transient::dtmc_steps_performed() / 6;
    println!(
        "curve: {:.1}x wall, {:.1}x fewer DTMC steps ({batched_steps} vs {scalar_steps}) \
         for the batched sweep",
        scalar / batched,
        scalar_steps as f64 / batched_steps as f64,
    );
}
