//! Criterion benchmarks of the pipeline stages: block construction,
//! parallel composition, bisimulation reduction and CTMC solving.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use arcade::ast::{BcDef, RepairStrategy, RuDef, SystemDef};
use arcade::dist::Dist;
use arcade::expr::Expr;
use arcade::model::SystemModel;
use bisim::pipeline::{reduce, ReduceOptions, Strategy};
use ctmc::{measures, Ctmc};
use ioimc::compose::parallel_all;

/// A chain of n repairable components sharing one FCFS repair unit, failing
/// as a k-of-n system — a tunable stress model.
fn chain(n: usize) -> SystemDef {
    let mut def = SystemDef::new(format!("chain{n}"));
    let names: Vec<String> = (0..n).map(|i| format!("c{i}")).collect();
    for name in &names {
        def.add_component(BcDef::new(name, Dist::exp(0.01), Dist::exp(1.0)));
    }
    def.add_repair_unit(RuDef::new("shop", names.clone(), RepairStrategy::Fcfs));
    def.set_system_down(Expr::k_of_n(
        (n as u32).div_ceil(2),
        names.iter().map(|n| Expr::down(n.clone())),
    ));
    def
}

fn bench_block_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("block-construction");
    for n in [2usize, 3, 4] {
        g.bench_with_input(BenchmarkId::new("elaborate-chain", n), &n, |b, &n| {
            let def = chain(n);
            b.iter(|| SystemModel::build(&def).expect("build"));
        });
    }
    g.finish();
}

fn bench_composition(c: &mut Criterion) {
    let mut g = c.benchmark_group("composition");
    for n in [2usize, 3, 4] {
        let model = SystemModel::build(&chain(n)).expect("build");
        let automata: Vec<ioimc::IoImc> = model.blocks.iter().map(|b| b.imc.clone()).collect();
        g.bench_with_input(BenchmarkId::new("parallel-all", n), &n, |b, _| {
            b.iter(|| parallel_all(&automata).expect("compose"));
        });
    }
    g.finish();
}

fn bench_reduction(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduction");
    let model = SystemModel::build(&chain(3)).expect("build");
    let automata: Vec<ioimc::IoImc> = model.blocks.iter().map(|b| b.imc.clone()).collect();
    let flat = parallel_all(&automata).expect("compose");
    for strategy in [Strategy::Strong, Strategy::Branching] {
        g.bench_with_input(
            BenchmarkId::new("strategy", format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                let opts = ReduceOptions {
                    strategy,
                    tau: model.tau,
                };
                b.iter(|| reduce(&flat, &opts));
            },
        );
    }
    g.finish();
}

fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("ctmc-solvers");
    // Birth-death chain of 500 states.
    let n = 500u32;
    let rows: Vec<Vec<(f64, u32)>> = (0..n)
        .map(|i| {
            let mut row = Vec::new();
            if i + 1 < n {
                row.push((0.4, i + 1));
            }
            if i > 0 {
                row.push((1.0, i - 1));
            }
            row
        })
        .collect();
    let labels: Vec<u64> = (0..n).map(|i| u64::from(i > n / 2)).collect();
    let chain = Ctmc::new(rows, labels, 0).expect("ctmc");
    g.bench_function("steady-state-500", |b| {
        b.iter(|| measures::steady_state_availability(&chain, 1));
    });
    g.bench_function("transient-500-t100", |b| {
        b.iter(|| measures::point_availability(&chain, 1, 100.0));
    });
    g.bench_function("first-passage-500-t100", |b| {
        b.iter(|| measures::unreliability(&chain, 1, 100.0));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_block_construction,
    bench_composition,
    bench_reduction,
    bench_solvers
);
criterion_main!(benches);
