//! Property-based tests of the partition-refinement engine on random
//! automata, over deterministically seeded random cases (the workspace is
//! dependency-free, so a small internal generator plays the role of
//! proptest).

use smallrand::SmallRng;

use bisim::branching::{refine_branching, refine_branching_legacy, refine_branching_threaded};
use bisim::partition::Partition;
use bisim::pipeline::{
    reduce, reduce_legacy, reduce_seeded, ReduceOptions, Strategy as Equivalence,
};
use bisim::quotient::quotient;
use bisim::strong::{refine_strong, refine_strong_legacy, refine_strong_threaded};
use ioimc::builder::IoImcBuilder;
use ioimc::{ActionId, IoImc};

fn arb_automaton(rng: &mut SmallRng) -> IoImc {
    let n = rng.range_usize(2, 7);
    let num_inter = rng.range_usize(0, 14);
    let num_mark = rng.range_usize(0, 8);
    let act = ActionId(0); // visible output
    let tau = ActionId(1); // internal
    let inp = ActionId(2); // input
    let mut b = IoImcBuilder::new();
    b.set_outputs([act]).set_internals([tau]).set_inputs([inp]);
    for _ in 0..n {
        b.add_labeled_state(rng.below(2));
    }
    let n = n as u32;
    for _ in 0..num_inter {
        let s = rng.range_u32(0, 7) % n;
        let a = match rng.range_u32(0, 3) {
            0 => act,
            1 => tau,
            _ => inp,
        };
        let t = rng.range_u32(0, 7) % n;
        b.interactive(s, a, t);
    }
    for _ in 0..num_mark {
        let s = rng.range_u32(0, 7) % n;
        let r = f64::from(rng.range_u32(1, 5));
        let t = rng.range_u32(0, 7) % n;
        b.markovian(s, r, t);
    }
    b.complete_inputs().build().expect("valid")
}

fn opts(strategy: Equivalence) -> ReduceOptions {
    ReduceOptions {
        strategy,
        tau: ActionId(1),
    }
}

const CASES: u64 = 128;

/// The refined partition never merges states with different labels.
#[test]
fn refinement_respects_labels() {
    for seed in 0..CASES {
        let a = arb_automaton(&mut SmallRng::seed_from_u64(seed));
        let (p, _) = refine_strong(&a, Partition::by_label(&a));
        for s in 0..a.num_states() as u32 {
            for t in 0..a.num_states() as u32 {
                if p.same_block(s, t) {
                    assert_eq!(a.label(s), a.label(t));
                }
            }
        }
    }
}

/// Strong bisimilarity implies matching lumped rate sums into every
/// *other* block (ordinary lumpability; intra-block rates are
/// unobservable quotient self-loops).
#[test]
fn strong_partition_lumps_rates() {
    for seed in 0..CASES {
        let a = arb_automaton(&mut SmallRng::seed_from_u64(1000 + seed));
        let (p, _) = refine_strong(&a, Partition::by_label(&a));
        for s in 0..a.num_states() as u32 {
            for t in (s + 1)..a.num_states() as u32 {
                if !p.same_block(s, t) {
                    continue;
                }
                for block in (0..p.num_blocks() as u32).filter(|&b| b != p.block_of(s)) {
                    let sum = |x: u32| -> f64 {
                        a.markovian_from(x)
                            .iter()
                            .filter(|&&(_, tgt)| p.block_of(tgt) == block)
                            .map(|&(r, _)| r)
                            .sum()
                    };
                    assert!((sum(s) - sum(t)).abs() < 1e-9);
                }
            }
        }
    }
}

/// The branching partition is never finer than needed: refining its
/// own quotient again yields no further splits (fixpoint).
#[test]
fn branching_reaches_fixpoint() {
    for seed in 0..CASES {
        let a = arb_automaton(&mut SmallRng::seed_from_u64(2000 + seed));
        let r1 = reduce(&a, &opts(Equivalence::Branching)).imc;
        let r2 = reduce(&r1, &opts(Equivalence::Branching)).imc;
        assert_eq!(r1.num_states(), r2.num_states());
    }
}

/// Strong refines branching: the branching quotient is never larger.
#[test]
fn branching_coarser_than_strong() {
    for seed in 0..CASES {
        let a = arb_automaton(&mut SmallRng::seed_from_u64(3000 + seed));
        let s = reduce(&a, &opts(Equivalence::Strong)).imc;
        let b = reduce(&a, &opts(Equivalence::Branching)).imc;
        assert!(b.num_states() <= s.num_states());
    }
}

/// Quotients are valid automata (signature intact, input-enabled).
#[test]
fn quotient_is_valid() {
    for seed in 0..CASES {
        let a = arb_automaton(&mut SmallRng::seed_from_u64(4000 + seed));
        for strategy in [Equivalence::Strong, Equivalence::Branching] {
            let r = reduce(&a, &opts(strategy)).imc;
            assert!(ioimc::validate::validate(&r).is_ok());
            assert_eq!(r.inputs(), a.inputs());
            assert_eq!(r.outputs(), a.outputs());
        }
    }
}

/// The branching refinement of the disjoint union puts each state in
/// the same block as itself-in-the-copy (reflexivity across union).
#[test]
fn union_self_equivalence() {
    for seed in 0..CASES {
        let a = arb_automaton(&mut SmallRng::seed_from_u64(5000 + seed));
        assert!(bisim::pipeline::equivalent(
            &a,
            &a,
            &opts(Equivalence::Branching)
        ));
    }
}

/// Relabeling a state differently must split it from its old block.
/// (Uses the strong refiner: `refine_branching` requires the
/// tau-acyclic form that `reduce` prepares, and the preparation would
/// merge the relabeled state away.)
#[test]
fn label_change_splits() {
    for seed in 0..CASES {
        let a = arb_automaton(&mut SmallRng::seed_from_u64(6000 + seed));
        if a.num_states() < 2 {
            continue;
        }
        let mut labels = a.labels().to_vec();
        labels[0] = 7; // unique label
        let relabeled = a.clone().with_labels(labels);
        let (p, _) = refine_strong(&relabeled, Partition::by_label(&relabeled));
        for t in 1..relabeled.num_states() as u32 {
            assert!(!p.same_block(0, t));
        }
    }
}

/// `reduce` (which collapses tau cycles first) accepts any automaton
/// and respects labels modulo tau-cycle merging.
#[test]
fn reduce_handles_tau_cycles() {
    for seed in 0..CASES {
        let a = arb_automaton(&mut SmallRng::seed_from_u64(7000 + seed));
        let r = reduce(&a, &opts(Equivalence::Branching)).imc;
        assert!(r.num_states() >= 1);
        assert!(ioimc::validate::validate(&r).is_ok());
    }
}

/// The tau-acyclic preparation the pipeline applies before branching
/// refinement (the branching refiner's precondition).
fn prepare_branching(a: &IoImc) -> IoImc {
    let mut cur = ioimc::scc::collapse_tau_sccs(&ioimc::reach::restrict_reachable(a));
    ioimc::mp::maximal_progress_cut(&mut cur);
    ioimc::reach::restrict_reachable(&cur)
}

/// The worklist strong refiner is a drop-in for the legacy
/// recompute-all loop: identical partition (same numbering, not just the
/// same equivalence), identical fixpoint signatures and identical
/// quotient automaton, at every thread count.
#[test]
fn worklist_strong_matches_legacy() {
    for seed in 0..CASES {
        let a = arb_automaton(&mut SmallRng::seed_from_u64(8000 + seed));
        let (lp, lsigs) = refine_strong_legacy(&a, Partition::by_label(&a));
        for threads in [1usize, 2, 4] {
            let (wp, wsigs) = if threads == 1 {
                refine_strong(&a, Partition::by_label(&a))
            } else {
                refine_strong_threaded(&a, Partition::by_label(&a), threads)
            };
            assert_eq!(
                wp.num_blocks(),
                lp.num_blocks(),
                "seed {seed}, {threads} threads"
            );
            assert_eq!(wp.blocks(), lp.blocks(), "seed {seed}, {threads} threads");
            assert_eq!(wsigs, lsigs, "seed {seed}, {threads} threads");
            let wq = quotient(&a, &wp, &wsigs, ActionId(1));
            let lq = quotient(&a, &lp, &lsigs, ActionId(1));
            assert_eq!(wq, lq, "seed {seed}, {threads} threads");
        }
    }
}

/// Same drop-in contract for the branching refiner (on the tau-acyclic
/// form the pipeline prepares).
#[test]
fn worklist_branching_matches_legacy() {
    for seed in 0..CASES {
        let a = prepare_branching(&arb_automaton(&mut SmallRng::seed_from_u64(9000 + seed)));
        let (lp, lsigs) = refine_branching_legacy(&a, Partition::by_label(&a));
        for threads in [1usize, 2, 4] {
            let (wp, wsigs) = if threads == 1 {
                refine_branching(&a, Partition::by_label(&a))
            } else {
                refine_branching_threaded(&a, Partition::by_label(&a), threads)
            };
            assert_eq!(
                wp.num_blocks(),
                lp.num_blocks(),
                "seed {seed}, {threads} threads"
            );
            assert_eq!(wp.blocks(), lp.blocks(), "seed {seed}, {threads} threads");
            assert_eq!(wsigs, lsigs, "seed {seed}, {threads} threads");
            let wq = quotient(&a, &wp, &wsigs, ActionId(1));
            let lq = quotient(&a, &lp, &lsigs, ActionId(1));
            assert_eq!(wq, lq, "seed {seed}, {threads} threads");
        }
    }
}

/// The full worklist pipeline reproduces the legacy pipeline's automaton
/// exactly (both strategies, unseeded).
#[test]
fn reduce_matches_reduce_legacy() {
    for seed in 0..CASES {
        let a = arb_automaton(&mut SmallRng::seed_from_u64(10_000 + seed));
        for strategy in [
            Equivalence::None,
            Equivalence::Strong,
            Equivalence::Branching,
        ] {
            let w = reduce(&a, &opts(strategy)).imc;
            let l = reduce_legacy(&a, &opts(strategy)).imc;
            assert_eq!(w, l, "seed {seed}, {strategy:?}");
        }
    }
}

/// A cross-step refinement seed — any grouping hint, however adversarial
/// — never changes the minimized model: the seeded quotient has the same
/// size as the unseeded one and is bisimilar to it. (Rates here are
/// integers, so lumped sums are exact and the equivalence check is
/// float-noise-free.)
#[test]
fn seeded_reduce_agrees_with_unseeded() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(11_000 + seed);
        let a = arb_automaton(&mut rng);
        let groups = rng.range_u32(1, 4);
        let hint: Vec<u32> = (0..a.num_states())
            .map(|_| rng.range_u32(0, 7) % groups)
            .collect();
        let o = opts(Equivalence::Branching);
        let plain = reduce(&a, &o).imc;
        let seeded = reduce_seeded(&a, &o, 1, Some(&hint)).imc;
        assert_eq!(seeded.num_states(), plain.num_states(), "seed {seed}");
        assert_eq!(
            seeded.num_interactive() + seeded.num_markovian(),
            plain.num_interactive() + plain.num_markovian(),
            "seed {seed}"
        );
        assert!(
            bisim::pipeline::equivalent(&seeded, &plain, &o),
            "seed {seed}: seeded quotient not bisimilar to the unseeded one"
        );
    }
}
