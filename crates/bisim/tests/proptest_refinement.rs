//! Property-based tests of the partition-refinement engine on random
//! automata.

use proptest::prelude::*;


use bisim::partition::Partition;
use bisim::pipeline::{reduce, ReduceOptions, Strategy as Equivalence};
use bisim::strong::refine_strong;
use ioimc::builder::IoImcBuilder;
use ioimc::{ActionId, IoImc};

fn arb_automaton() -> impl Strategy<Value = IoImc> {
    (
        2usize..7,
        proptest::collection::vec((0u32..7, 0u32..3, 0u32..7), 0..14),
        proptest::collection::vec((0u32..7, 1u32..5, 0u32..7), 0..8),
        proptest::collection::vec(0u64..2, 7),
    )
        .prop_map(|(n, inter, mark, labels)| {
            let act = ActionId(0); // visible output
            let tau = ActionId(1); // internal
            let inp = ActionId(2); // input
            let mut b = IoImcBuilder::new();
            b.set_outputs([act]).set_internals([tau]).set_inputs([inp]);
            for &label in labels.iter().take(n) {
                b.add_labeled_state(label);
            }
            let n = n as u32;
            for (s, a, t) in inter {
                let a = match a {
                    0 => act,
                    1 => tau,
                    _ => inp,
                };
                b.interactive(s % n, a, t % n);
            }
            for (s, r, t) in mark {
                b.markovian(s % n, f64::from(r), t % n);
            }
            b.complete_inputs().build().expect("valid")
        })
}

fn opts(strategy: Equivalence) -> ReduceOptions {
    ReduceOptions {
        strategy,
        tau: ActionId(1),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The refined partition never merges states with different labels.
    #[test]
    fn refinement_respects_labels(a in arb_automaton()) {
        let (p, _) = refine_strong(&a, Partition::by_label(&a));
        for s in 0..a.num_states() as u32 {
            for t in 0..a.num_states() as u32 {
                if p.same_block(s, t) {
                    prop_assert_eq!(a.label(s), a.label(t));
                }
            }
        }
    }

    /// Strong bisimilarity implies matching lumped rate sums into every
    /// *other* block (ordinary lumpability; intra-block rates are
    /// unobservable quotient self-loops).
    #[test]
    fn strong_partition_lumps_rates(a in arb_automaton()) {
        let (p, _) = refine_strong(&a, Partition::by_label(&a));
        for s in 0..a.num_states() as u32 {
            for t in (s + 1)..a.num_states() as u32 {
                if !p.same_block(s, t) {
                    continue;
                }
                for block in (0..p.num_blocks() as u32).filter(|&b| b != p.block_of(s)) {
                    let sum = |x: u32| -> f64 {
                        a.markovian_from(x)
                            .iter()
                            .filter(|&&(_, tgt)| p.block_of(tgt) == block)
                            .map(|&(r, _)| r)
                            .sum()
                    };
                    prop_assert!((sum(s) - sum(t)).abs() < 1e-9);
                }
            }
        }
    }

    /// The branching partition is never finer than needed: refining its
    /// own quotient again yields no further splits (fixpoint).
    #[test]
    fn branching_reaches_fixpoint(a in arb_automaton()) {
        let r1 = reduce(&a, &opts(Equivalence::Branching)).imc;
        let r2 = reduce(&r1, &opts(Equivalence::Branching)).imc;
        prop_assert_eq!(r1.num_states(), r2.num_states());
    }

    /// Strong refines branching: the branching quotient is never larger.
    #[test]
    fn branching_coarser_than_strong(a in arb_automaton()) {
        let s = reduce(&a, &opts(Equivalence::Strong)).imc;
        let b = reduce(&a, &opts(Equivalence::Branching)).imc;
        prop_assert!(b.num_states() <= s.num_states());
    }

    /// Quotients are valid automata (signature intact, input-enabled).
    #[test]
    fn quotient_is_valid(a in arb_automaton()) {
        for strategy in [Equivalence::Strong, Equivalence::Branching] {
            let r = reduce(&a, &opts(strategy)).imc;
            prop_assert!(ioimc::validate::validate(&r).is_ok());
            prop_assert_eq!(r.inputs(), a.inputs());
            prop_assert_eq!(r.outputs(), a.outputs());
        }
    }

    /// The branching refinement of the disjoint union puts each state in
    /// the same block as itself-in-the-copy (reflexivity across union).
    #[test]
    fn union_self_equivalence(a in arb_automaton()) {
        let opts = opts(Equivalence::Branching);
        prop_assert!(bisim::pipeline::equivalent(&a, &a, &opts));
    }

    /// Relabeling a state differently must split it from its old block.
    /// (Uses the strong refiner: `refine_branching` requires the
    /// tau-acyclic form that `reduce` prepares, and the preparation would
    /// merge the relabeled state away.)
    #[test]
    fn label_change_splits(a in arb_automaton()) {
        if a.num_states() < 2 {
            return Ok(());
        }
        let mut labels = a.labels().to_vec();
        labels[0] = 7; // unique label
        let relabeled = a.clone().with_labels(labels);
        let (p, _) = refine_strong(&relabeled, Partition::by_label(&relabeled));
        for t in 1..relabeled.num_states() as u32 {
            prop_assert!(!p.same_block(0, t));
        }
    }

    /// `reduce` (which collapses tau cycles first) accepts any automaton
    /// and respects labels modulo tau-cycle merging.
    #[test]
    fn reduce_handles_tau_cycles(a in arb_automaton()) {
        let r = reduce(&a, &opts(Equivalence::Branching)).imc;
        prop_assert!(r.num_states() >= 1);
        prop_assert!(ioimc::validate::validate(&r).is_ok());
    }
}
