//! Worklist/splitter-driven partition refinement.
//!
//! The legacy refinement loops in [`crate::strong`] and
//! [`crate::branching`] recompute every state's signature on every round.
//! This module implements the same fixpoint with a dirty-set discipline in
//! the spirit of Paige–Tarjan/Valmari splitter refinement, adapted to
//! signature-based (Blom–Orzan) refinement:
//!
//! * **Only touched states are re-signed.** When a block splits, exactly
//!   the states whose signature *could* have changed are marked dirty for
//!   the next round: the states that moved into a fresh block, plus every
//!   predecessor (interactive or Markovian, via
//!   [`ioimc::IoImc::incoming`]) of a moved state. For branching
//!   refinement the dirty set is additionally closed under internal-action
//!   predecessor edges, because a branching signature embeds the
//!   signatures of its inert tau successors.
//! * **Retained-id splits.** When a block splits, the sub-group containing
//!   the block's first member (ascending state id) keeps the block's id;
//!   only the other sub-groups get fresh ids. A signature entry referencing
//!   block `B` therefore stays valid for every clean state: had any of its
//!   successors left the retained group, the state would be dirty.
//! * **Hash-consed signatures.** Signatures are interned in a
//!   [`SigTable`], so "same signature?" during a split is an integer
//!   compare instead of hashing a `Vec<SigEntry>`.
//!
//! # Determinism discipline
//!
//! The refinement is bitwise identical to the serial legacy loop at every
//! thread count:
//!
//! * dirty states are re-signed in a fixed order (ascending state id for
//!   strong, the precomputed tau-topological order for branching);
//!   parallel workers only *compute* signatures (pure functions of the
//!   automaton and the current block array) — interning happens on the
//!   coordinating thread in that same fixed order;
//! * touched blocks are split in ascending block id, members grouped by
//!   first occurrence in ascending state order, fresh block ids allocated
//!   in that order;
//! * at the fixpoint, blocks are renumbered canonically by first
//!   occurrence in ascending state order and signatures are materialized
//!   against that numbering — which reproduces, entry for entry, what the
//!   legacy recompute-all loop returns for the same initial partition.

use std::time::Instant;

use ioimc::{IoImc, StateId};

use crate::branching::{
    branching_signature_into, branching_signature_with, conservative_signature,
    conservative_signature_into, tau_graph, tau_layers,
};
use crate::partition::Partition;
use crate::signature::{canonicalize, SigEntry, SigTable, Signature};
use crate::strong::{strong_signature, strong_signature_into};

/// Counters describing one refinement run; summed into
/// [`crate::pipeline::RefineStats`] by the pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RefineCounters {
    /// Refinement rounds until the fixpoint (≥ 1).
    pub rounds: u64,
    /// Total number of per-state signature computations.
    pub states_resigned: u64,
    /// Wall time spent computing and interning signatures.
    pub signature_secs: f64,
    /// Wall time spent splitting blocks and propagating dirtiness.
    pub split_secs: f64,
}

/// Which signature the refinement fixpoint is computed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    Strong,
    Branching,
}

/// Refines `initial` to the coarsest stable partition of `imc` under
/// `mode`, returning the canonical partition (blocks numbered by first
/// occurrence in ascending state order) and the fixpoint signature of
/// every state w.r.t. that numbering. Bitwise identical to the legacy
/// recompute-all loops for every thread count.
pub(crate) fn refine_worklist(
    imc: &IoImc,
    initial: &Partition,
    threads: usize,
    mode: Mode,
    counters: &mut RefineCounters,
) -> (Partition, Vec<Signature>) {
    let (partition, block_sigs) = refine_worklist_blocks(imc, initial, threads, mode, counters);
    // Per-state view: states in a block share the block's fixpoint
    // signature (that is what "stable" means).
    let sigs = partition
        .blocks()
        .iter()
        .map(|&b| block_sigs[b as usize].clone())
        .collect();
    (partition, sigs)
}

/// [`refine_worklist`] returning one fixpoint signature per *canonical
/// block* instead of per state. The pipeline quotients straight off this
/// (a quotient only reads block representatives), skipping the per-state
/// materialization entirely.
pub(crate) fn refine_worklist_blocks(
    imc: &IoImc,
    initial: &Partition,
    threads: usize,
    mode: Mode,
    counters: &mut RefineCounters,
) -> (Partition, Vec<Signature>) {
    let n = imc.num_states();
    if n == 0 {
        return (Partition::from_blocks(Vec::new(), 0), Vec::new());
    }
    // Below a few thousand states the bookkeeping beats thread spawns.
    let threads = if n < crate::PAR_STATE_THRESHOLD {
        1
    } else {
        threads.max(1)
    };

    // --- block storage: states grouped contiguously per block id -------
    // `elems[start[b]..end[b]]` are the members of block `b`, ascending.
    // Block ids grow as splits allocate fresh ids; they are *not* dense
    // during refinement and are canonically renumbered at the fixpoint.
    let mut part: Vec<u32> = initial.blocks().to_vec();
    let members = initial.members_csr();
    let k0 = members.num_blocks();
    let mut elems: Vec<StateId> = Vec::with_capacity(n);
    let mut start: Vec<u32> = Vec::with_capacity(k0);
    let mut end: Vec<u32> = Vec::with_capacity(k0);
    for b in 0..k0 {
        start.push(elems.len() as u32);
        elems.extend_from_slice(members.of(b));
        end.push(elems.len() as u32);
    }

    // --- transposed adjacency for dirtiness propagation ----------------
    let (pred_off, preds) = imc.incoming();
    let preds_of =
        |s: StateId| &preds[pred_off[s as usize] as usize..pred_off[s as usize + 1] as usize];

    // --- branching-only structure: tau topology ------------------------
    let tg = if mode == Mode::Branching {
        Some(tau_graph(imc))
    } else {
        None
    };
    let layers: Vec<Vec<StateId>> = match (&tg, threads > 1) {
        (Some(tg), true) => tau_layers(imc, &tg.order),
        _ => Vec::new(),
    };
    // States on unexpected tau cycles (absent from the topological order)
    // fall back to a conservative signature, exactly like the legacy loop.
    let in_order: Vec<bool> = match &tg {
        Some(tg) if tg.order.len() < n => {
            let mut mask = vec![false; n];
            for &s in &tg.order {
                mask[s as usize] = true;
            }
            mask
        }
        _ => Vec::new(),
    };
    // Position of each state in the tau topological order (`u32::MAX` for
    // states on unexpected tau cycles): the sort key that keeps the dirty
    // list in re-signing order between rounds.
    let topo_pos: Vec<u32> = match &tg {
        Some(tg) => {
            let mut pos = vec![u32::MAX; n];
            for (i, &s) in tg.order.iter().enumerate() {
                pos[s as usize] = i as u32;
            }
            pos
        }
        None => Vec::new(),
    };

    let mut table = SigTable::new();
    const UNSIGNED: u32 = u32::MAX;
    let mut sig_of: Vec<u32> = vec![UNSIGNED; n];

    // The dirty set is kept twice: as a membership bitmap and as an
    // explicit list sorted in re-signing order (ascending state id for
    // strong, tau-topological — cycle states last, ascending — for
    // branching), so a round's cost scales with the dirty set, not `n`.
    let mut dirty: Vec<bool> = vec![true; n];
    let mut dirty_list: Vec<StateId> = (0..n as StateId).collect();
    if mode == Mode::Branching {
        dirty_list.sort_unstable_by_key(|&s| (topo_pos[s as usize], s));
    }
    let mut changed: Vec<StateId> = Vec::new();
    let mut moved: Vec<StateId> = Vec::new();
    let mut scratch: Vec<StateId> = Vec::new();

    loop {
        counters.rounds += 1;
        // Cooperative cancellation at round granularity: the poll (and
        // its potential unwind) happens on the coordinating thread only,
        // so no signature worker can be stranded mid-fan-out.
        ioimc::budget::checkpoint();

        // ---- phase 1: re-sign dirty states ----------------------------
        let t0 = Instant::now();
        changed.clear();
        match mode {
            Mode::Strong => resign_strong(
                imc,
                threads,
                &part,
                &dirty_list,
                &mut table,
                &mut sig_of,
                &mut changed,
                counters,
            ),
            Mode::Branching => resign_branching(
                imc,
                threads,
                &layers,
                &in_order,
                &part,
                &dirty_list,
                &dirty,
                &mut table,
                &mut sig_of,
                &mut changed,
                counters,
            ),
        }
        counters.signature_secs += t0.elapsed().as_secs_f64();

        // ---- phase 2: split the blocks holding changed signatures -----
        let t0 = Instant::now();
        moved.clear();
        let mut touched: Vec<u32> = changed.iter().map(|&s| part[s as usize]).collect();
        touched.sort_unstable();
        touched.dedup();
        for &b in &touched {
            split_block(
                b,
                &sig_of,
                &mut part,
                &mut elems,
                &mut start,
                &mut end,
                &mut moved,
                &mut scratch,
            );
        }
        if moved.is_empty() {
            counters.split_secs += t0.elapsed().as_secs_f64();
            break;
        }

        // ---- phase 3: seed the next dirty set -------------------------
        // Moved states changed their own block id; their predecessors see
        // a successor in a new block. The *inert* tau-predecessor closure
        // covers the inert-signature embedding of branching refinement: a
        // predecessor over a non-inert tau edge only references the
        // successor's block id (covered by `preds(moved)` already), while
        // an inert predecessor embeds the successor's whole signature, so
        // any signature change propagates through it. Refinement only
        // splits, so a non-inert edge can never become inert again —
        // restricting the closure to currently-inert edges is sound and
        // keeps the dirty set from swallowing entire tau basins. Closed
        // states are re-signed in the same round *after* their successors
        // (topological order), so in-round cascades resolve without extra
        // rounds.
        for &s in &dirty_list {
            dirty[s as usize] = false;
        }
        dirty_list.clear();
        for &s in &moved {
            if !dirty[s as usize] {
                dirty[s as usize] = true;
                dirty_list.push(s);
            }
            for &p in preds_of(s) {
                if !dirty[p as usize] {
                    dirty[p as usize] = true;
                    dirty_list.push(p);
                }
            }
        }
        if let Some(tg) = &tg {
            // Cursor-as-frontier: states appended during the closure are
            // themselves closed over before the round ends.
            let mut i = 0;
            while i < dirty_list.len() {
                let s = dirty_list[i];
                i += 1;
                let lo = tg.pred_off[s as usize] as usize;
                let hi = tg.pred_off[s as usize + 1] as usize;
                for &p in &tg.preds[lo..hi] {
                    if part[p as usize] == part[s as usize] && !dirty[p as usize] {
                        dirty[p as usize] = true;
                        dirty_list.push(p);
                    }
                }
            }
        }
        match mode {
            Mode::Strong => dirty_list.sort_unstable(),
            Mode::Branching => {
                dirty_list.sort_unstable_by_key(|&s| (topo_pos[s as usize], s));
            }
        }
        counters.split_secs += t0.elapsed().as_secs_f64();
    }

    // ---- fixpoint: canonical renumbering + signature materialization --
    // First-occurrence numbering in ascending state order is exactly the
    // numbering the legacy `split` assigns at its fixpoint, so downstream
    // quotients are bitwise identical to the legacy path.
    const UNSET: u32 = u32::MAX;
    let mut canon: Vec<u32> = vec![UNSET; start.len()];
    let mut blocks: Vec<u32> = vec![0; n];
    let mut block_sig_id: Vec<u32> = Vec::new();
    let mut num = 0u32;
    for s in 0..n {
        let b = part[s] as usize;
        if canon[b] == UNSET {
            canon[b] = num;
            block_sig_id.push(sig_of[s]);
            num += 1;
        }
        blocks[s] = canon[b];
    }
    let partition = Partition::from_blocks(blocks, num as usize);
    let remap = |e: &SigEntry| -> SigEntry {
        let fix = |b: u32| {
            debug_assert_ne!(
                canon[b as usize], UNSET,
                "signature references a dead block"
            );
            canon[b as usize]
        };
        match *e {
            SigEntry::Act { action, block } => SigEntry::Act {
                action,
                block: fix(block),
            },
            SigEntry::Tau { block } => SigEntry::Tau { block: fix(block) },
            SigEntry::Rate { block, qrate } => SigEntry::Rate {
                block: fix(block),
                qrate,
            },
        }
    };
    let block_sigs: Vec<Signature> = block_sig_id
        .iter()
        .map(|&id| {
            let mut sig: Signature = table.get(id).iter().map(remap).collect();
            canonicalize(&mut sig);
            sig
        })
        .collect();
    (partition, block_sigs)
}

/// Re-signs the dirty states under the strong signature (the list is
/// already in ascending state order) and records the states whose
/// interned signature id changed.
#[allow(clippy::too_many_arguments)]
fn resign_strong(
    imc: &IoImc,
    threads: usize,
    part: &[u32],
    list: &[StateId],
    table: &mut SigTable,
    sig_of: &mut [u32],
    changed: &mut Vec<StateId>,
    counters: &mut RefineCounters,
) {
    counters.states_resigned += list.len() as u64;
    if threads <= 1 || list.len() < crate::PAR_STATE_THRESHOLD {
        let mut sig: Signature = Vec::new();
        let mut rates: Vec<(u32, f64)> = Vec::new();
        for &s in list {
            strong_signature_into(imc, part, s, &mut sig, &mut rates);
            intern_slice_and_track(table, sig_of, changed, s, &sig);
        }
        return;
    }
    let chunk = list.len().div_ceil(4 * threads).max(1);
    let chunks: Vec<&[StateId]> = list.chunks(chunk).collect();
    let computed = ioimc::par::par_map(threads, &chunks, |_, states| {
        states
            .iter()
            .map(|&s| strong_signature(imc, part, s))
            .collect::<Vec<Signature>>()
    });
    for (states, sigs) in chunks.iter().zip(computed) {
        for (&s, sig) in states.iter().zip(sigs) {
            intern_and_track(table, sig_of, changed, s, sig);
        }
    }
}

/// Re-signs the dirty states under the branching signature in tau
/// topological order (successors before predecessors, so in-round
/// signature cascades along inert tau edges resolve immediately). The
/// serial path walks `list` (pre-sorted tau-topologically, cycle states
/// last); the layered parallel schedule filters `layers` through the
/// `dirty` bitmap — same set, same effective order.
#[allow(clippy::too_many_arguments)]
fn resign_branching(
    imc: &IoImc,
    threads: usize,
    layers: &[Vec<StateId>],
    in_order: &[bool],
    part: &[u32],
    list: &[StateId],
    dirty: &[bool],
    table: &mut SigTable,
    sig_of: &mut [u32],
    changed: &mut Vec<StateId>,
    counters: &mut RefineCounters,
) {
    const UNSIGNED: u32 = u32::MAX;
    if threads <= 1 {
        counters.states_resigned += list.len() as u64;
        let mut sig: Signature = Vec::new();
        let mut rates: Vec<(u32, f64)> = Vec::new();
        for &s in list {
            if in_order.is_empty() || in_order[s as usize] {
                let succ = |t: StateId| {
                    debug_assert_ne!(sig_of[t as usize], UNSIGNED);
                    table.get(sig_of[t as usize])
                };
                branching_signature_into(imc, part, succ, s, &mut sig, &mut rates);
            } else {
                // Unexpected tau cycle: conservative fallback, reached
                // after every in-order state (`topo_pos == u32::MAX`
                // sorts last).
                conservative_signature_into(imc, part, s, &mut sig, &mut rates);
            }
            intern_slice_and_track(table, sig_of, changed, s, &sig);
        }
        return;
    }
    {
        // Layered schedule: within a tau layer no state reaches another,
        // so their signatures only read lower (already interned) layers.
        for layer in layers {
            let sub: Vec<StateId> = layer
                .iter()
                .copied()
                .filter(|&s| dirty[s as usize])
                .collect();
            counters.states_resigned += sub.len() as u64;
            if sub.len() < crate::PAR_STATE_THRESHOLD {
                for &s in &sub {
                    let sig = {
                        let succ = |t: StateId| table.get(sig_of[t as usize]);
                        branching_signature_with(imc, part, succ, s)
                    };
                    intern_and_track(table, sig_of, changed, s, sig);
                }
                continue;
            }
            let chunk = sub.len().div_ceil(4 * threads).max(1);
            let chunks: Vec<&[StateId]> = sub.chunks(chunk).collect();
            let (table_ref, sig_of_ref) = (&*table, &*sig_of);
            let computed = ioimc::par::par_map(threads, &chunks, |_, states| {
                states
                    .iter()
                    .map(|&s| {
                        let succ = |t: StateId| table_ref.get(sig_of_ref[t as usize]);
                        branching_signature_with(imc, part, succ, s)
                    })
                    .collect::<Vec<Signature>>()
            });
            for (states, sigs) in chunks.iter().zip(computed) {
                for (&s, sig) in states.iter().zip(sigs) {
                    intern_and_track(table, sig_of, changed, s, sig);
                }
            }
        }
    }
    // States on unexpected tau cycles: conservative fallback, ascending.
    if !in_order.is_empty() {
        for s in 0..imc.num_states() as StateId {
            if dirty[s as usize] && !in_order[s as usize] {
                counters.states_resigned += 1;
                let sig = conservative_signature(imc, part, s);
                intern_and_track(table, sig_of, changed, s, sig);
            }
        }
    }
}

fn intern_and_track(
    table: &mut SigTable,
    sig_of: &mut [u32],
    changed: &mut Vec<StateId>,
    s: StateId,
    sig: Signature,
) {
    let id = table.intern(sig);
    if sig_of[s as usize] != id {
        sig_of[s as usize] = id;
        changed.push(s);
    }
}

/// [`intern_and_track`] from a borrowed scratch buffer (no allocation on
/// a table hit). Most dirty states are conservative margin whose
/// signature did not actually change, so an equality check against the
/// state's previous interned signature short-circuits the hash + probe.
fn intern_slice_and_track(
    table: &mut SigTable,
    sig_of: &mut [u32],
    changed: &mut Vec<StateId>,
    s: StateId,
    sig: &[SigEntry],
) {
    let old = sig_of[s as usize];
    if old != u32::MAX && table.get(old) == sig {
        return;
    }
    let id = table.intern_slice(sig);
    if id != old {
        sig_of[s as usize] = id;
        changed.push(s);
    }
}

/// Splits block `b` by interned signature id. The sub-group holding the
/// block's first member retains id `b` (so signature entries referencing
/// `b` stay valid for clean states); the other sub-groups get fresh ids in
/// first-occurrence order and their states are recorded in `moved`.
#[allow(clippy::too_many_arguments)]
fn split_block(
    b: u32,
    sig_of: &[u32],
    part: &mut [u32],
    elems: &mut [StateId],
    start: &mut Vec<u32>,
    end: &mut Vec<u32>,
    moved: &mut Vec<StateId>,
    scratch: &mut Vec<StateId>,
) {
    let st = start[b as usize] as usize;
    let en = end[b as usize] as usize;
    if en - st <= 1 {
        return;
    }
    let members = &elems[st..en];
    // Group members by signature id, groups ordered by first occurrence,
    // members inside a group staying in ascending state order.
    let mut gid: ioimc::fxhash::FxHashMap<u32, u32> = ioimc::fxhash::FxHashMap::default();
    let mut group_of: Vec<u32> = Vec::with_capacity(members.len());
    let mut group_len: Vec<u32> = Vec::new();
    for &s in members {
        let next = group_len.len() as u32;
        let g = *gid.entry(sig_of[s as usize]).or_insert(next);
        if g == group_len.len() as u32 {
            group_len.push(0);
        }
        group_len[g as usize] += 1;
        group_of.push(g);
    }
    if group_len.len() == 1 {
        return;
    }
    // Scatter members into their group's slice of the block range.
    scratch.clear();
    scratch.extend_from_slice(members);
    let mut group_base: Vec<u32> = Vec::with_capacity(group_len.len());
    let mut acc = st as u32;
    for &len in &group_len {
        group_base.push(acc);
        acc += len;
    }
    let mut cursor = group_base.clone();
    for (i, &s) in scratch.iter().enumerate() {
        let g = group_of[i] as usize;
        elems[cursor[g] as usize] = s;
        cursor[g] += 1;
    }
    // Group 0 keeps id `b`; the rest get fresh ids in group order.
    end[b as usize] = group_base[1];
    for g in 1..group_len.len() {
        let nb = start.len() as u32;
        start.push(group_base[g]);
        end.push(group_base[g] + group_len[g]);
        let lo = group_base[g] as usize;
        let hi = (group_base[g] + group_len[g]) as usize;
        for &s in &elems[lo..hi] {
            part[s as usize] = nb;
            moved.push(s);
        }
    }
}
