//! Branching (weak) bisimulation with Markovian lumping.
//!
//! This is the equivalence Arcade's compositional aggregation minimizes
//! with: internal (tau) steps that stay inside an equivalence class are
//! unobservable, and cumulative Markovian rates into each class must match
//! (states with urgent transitions enabled carry no rates after the
//! maximal-progress cut).
//!
//! The implementation is signature-based partition refinement in the style
//! of Blom–Orzan: the signature of a state is the set of non-inert moves it
//! can make *after any sequence of inert tau steps*, computed by unioning
//! signatures along inert tau edges in reverse topological order.
//!
//! # Preconditions
//!
//! The tau graph must be acyclic ([`ioimc::scc::collapse_tau_sccs`]) and the
//! maximal-progress cut must have been applied — [`crate::pipeline::reduce`]
//! takes care of both.

use ioimc::{ActionKind, IoImc, StateId};

use crate::partition::Partition;
use crate::signature::{canonicalize, push_rate_entries, SigEntry, Signature};
use crate::strong::split;

/// Refines `initial` to the coarsest branching-bisimulation-with-lumping
/// partition of `imc`, returning the partition and the fixpoint signature of
/// each state.
///
/// # Panics
///
/// Panics (in debug builds) if the tau graph has a cycle; release builds
/// fall back to treating the offending tau edges as observable, which is
/// sound but reduces less.
pub fn refine_branching(imc: &IoImc, initial: Partition) -> (Partition, Vec<Signature>) {
    refine_branching_threaded(imc, initial, 1)
}

/// [`refine_branching`] with the per-state signature computation spread
/// over `threads` scoped workers.
///
/// Implemented by the worklist/splitter refiner (see [`crate::worklist`]).
/// A state's branching signature reads the signatures of its inert tau
/// successors, so dirty states are scheduled by *tau depth*: layer 0 holds
/// the tau-sinks (the overwhelming majority after the SCC collapse), layer
/// `d + 1` the states whose deepest tau successor sits in layer `d`.
/// Layers run in ascending order; within a layer every state is
/// independent and computed in parallel, with interning done on the
/// coordinating thread in layer order — so the refinement is bitwise
/// deterministic for every thread count and identical to
/// [`refine_branching_legacy`].
pub fn refine_branching_threaded(
    imc: &IoImc,
    initial: Partition,
    threads: usize,
) -> (Partition, Vec<Signature>) {
    let mut counters = crate::worklist::RefineCounters::default();
    crate::worklist::refine_worklist(
        imc,
        &initial,
        threads,
        crate::worklist::Mode::Branching,
        &mut counters,
    )
}

/// The pre-worklist refinement loop: recomputes every state's signature on
/// every round. Kept (serial only) as the differential-testing oracle for
/// the worklist refiner — the proptests in this crate and the
/// `exp_scaling --smoke` gate assert both produce identical partitions and
/// quotients. Not a supported hot path.
pub fn refine_branching_legacy(imc: &IoImc, initial: Partition) -> (Partition, Vec<Signature>) {
    let n = imc.num_states();
    let order = tau_topological_order(imc);
    debug_assert_eq!(order.len(), n, "tau graph must be acyclic");
    let mut part = initial;
    let mut sigs: Vec<Signature> = vec![Vec::new(); n];
    loop {
        // Process tau-sinks first so that inert successors are ready.
        for &s in &order {
            sigs[s as usize] =
                branching_signature_with(imc, part.blocks(), |t| sigs[t as usize].as_slice(), s);
        }
        // States not covered by the order (tau cycles; should not happen
        // after SCC collapse) get a conservative, non-absorbing signature.
        if order.len() < n {
            let mut seen = vec![false; n];
            for &s in &order {
                seen[s as usize] = true;
            }
            for s in 0..n as StateId {
                if !seen[s as usize] {
                    sigs[s as usize] = conservative_signature(imc, part.blocks(), s);
                }
            }
        }
        let next = split(&part, &sigs);
        if next.num_blocks() == part.num_blocks() {
            return (next, sigs);
        }
        part = next;
    }
}

/// Groups the topologically ordered states by tau depth: a state's layer
/// is one more than the deepest layer among its internal-action
/// successors (0 for tau-sinks). Within a layer no state tau-reaches
/// another, so their branching signatures are independent.
pub(crate) fn tau_layers(imc: &IoImc, order: &[StateId]) -> Vec<Vec<StateId>> {
    let n = imc.num_states();
    let mut depth = vec![0usize; n];
    let mut layers: Vec<Vec<StateId>> = Vec::new();
    for &s in order {
        let mut d = 0usize;
        for &(a, t) in imc.interactive_from(s) {
            if imc.kind_of(a) == Some(ActionKind::Internal) && t != s {
                d = d.max(depth[t as usize] + 1);
            }
        }
        depth[s as usize] = d;
        if layers.len() <= d {
            layers.resize_with(d + 1, Vec::new);
        }
        layers[d].push(s);
    }
    layers
}

/// The branching signature of `s` against the per-state block array,
/// reading the already-computed signature entries of each inert tau
/// successor through `succ` (a slice into either the legacy per-state
/// `Vec<Signature>` or the worklist's hash-consed [`crate::signature::SigTable`]).
pub(crate) fn branching_signature_with<'a, F>(
    imc: &IoImc,
    block_of: &[u32],
    succ: F,
    s: StateId,
) -> Signature
where
    F: Fn(StateId) -> &'a [SigEntry],
{
    let mut sig: Signature = Vec::new();
    let mut rates: Vec<(u32, f64)> = Vec::new();
    branching_signature_into(imc, block_of, succ, s, &mut sig, &mut rates);
    sig
}

/// [`branching_signature_with`] into caller-provided buffers: `sig`
/// receives the canonicalized signature, `rates` is rate-accumulation
/// scratch. Hot refinement loops reuse both across states to avoid a heap
/// allocation per re-signed state.
pub(crate) fn branching_signature_into<'a, F>(
    imc: &IoImc,
    block_of: &[u32],
    succ: F,
    s: StateId,
    sig: &mut Signature,
    rates: &mut Vec<(u32, f64)>,
) where
    F: Fn(StateId) -> &'a [SigEntry],
{
    sig.clear();
    let own_block = block_of[s as usize];
    for &(a, t) in imc.interactive_from(s) {
        match imc.kind_of(a) {
            Some(ActionKind::Internal) => {
                let block = block_of[t as usize];
                if block == own_block {
                    // Inert: everything the successor can do, we can do
                    // after an unobservable step.
                    sig.extend_from_slice(succ(t));
                } else {
                    sig.push(SigEntry::Tau { block });
                }
            }
            _ => sig.push(SigEntry::Act {
                action: a,
                block: block_of[t as usize],
            }),
        }
    }
    push_rate_entries(imc, block_of, s, sig, rates);
    canonicalize(sig);
}

/// Signature that treats every tau edge as observable — used only as a
/// fallback for states on unexpected tau cycles.
pub(crate) fn conservative_signature(imc: &IoImc, block_of: &[u32], s: StateId) -> Signature {
    let mut sig: Signature = Vec::new();
    let mut rates: Vec<(u32, f64)> = Vec::new();
    conservative_signature_into(imc, block_of, s, &mut sig, &mut rates);
    sig
}

/// [`conservative_signature`] into caller-provided buffers (see
/// [`branching_signature_into`]).
pub(crate) fn conservative_signature_into(
    imc: &IoImc,
    block_of: &[u32],
    s: StateId,
    sig: &mut Signature,
    rates: &mut Vec<(u32, f64)>,
) {
    sig.clear();
    for &(a, t) in imc.interactive_from(s) {
        match imc.kind_of(a) {
            Some(ActionKind::Internal) => sig.push(SigEntry::Tau {
                block: block_of[t as usize],
            }),
            _ => sig.push(SigEntry::Act {
                action: a,
                block: block_of[t as usize],
            }),
        }
    }
    push_rate_entries(imc, block_of, s, sig, rates);
    canonicalize(sig);
}

/// The tau-edge structure the branching refiners schedule by: the
/// topological order (tau-sinks first) plus the tau-predecessor adjacency
/// in flat CSR form. The worklist refiner reuses the predecessor CSR to
/// close its dirty set under internal-action predecessors.
pub(crate) struct TauGraph {
    /// States in topological order of the tau graph, tau-sinks first.
    /// States on tau cycles are omitted.
    pub order: Vec<StateId>,
    /// Offsets into `preds` per state (`num_states + 1` entries).
    pub pred_off: Vec<u32>,
    /// Sources of internal-action edges into each state.
    pub preds: Vec<StateId>,
}

/// Builds the [`TauGraph`] of `imc` (count + fill passes, Kahn's
/// algorithm on the predecessor CSR).
pub(crate) fn tau_graph(imc: &IoImc) -> TauGraph {
    let n = imc.num_states();
    let mut out_degree = vec![0usize; n];
    let mut pred_off = vec![0u32; n + 1];
    for (s, a, t) in imc.iter_interactive() {
        if imc.kind_of(a) == Some(ActionKind::Internal) && s != t {
            out_degree[s as usize] += 1;
            pred_off[t as usize + 1] += 1;
        }
    }
    for i in 0..n {
        pred_off[i + 1] += pred_off[i];
    }
    let mut preds: Vec<StateId> = vec![0; pred_off[n] as usize];
    let mut cursor: Vec<u32> = pred_off[..n].to_vec();
    for (s, a, t) in imc.iter_interactive() {
        if imc.kind_of(a) == Some(ActionKind::Internal) && s != t {
            preds[cursor[t as usize] as usize] = s;
            cursor[t as usize] += 1;
        }
    }
    let mut order: Vec<StateId> = (0..n as StateId)
        .filter(|&s| out_degree[s as usize] == 0)
        .collect();
    let mut head = 0;
    while head < order.len() {
        let t = order[head] as usize;
        head += 1;
        for &p in &preds[pred_off[t] as usize..pred_off[t + 1] as usize] {
            out_degree[p as usize] -= 1;
            if out_degree[p as usize] == 0 {
                order.push(p);
            }
        }
    }
    TauGraph {
        order,
        pred_off,
        preds,
    }
}

/// Orders states so that every tau edge goes from a later to an earlier
/// position (tau-sinks first). States on tau cycles are omitted.
fn tau_topological_order(imc: &IoImc) -> Vec<StateId> {
    tau_graph(imc).order
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioimc::builder::IoImcBuilder;
    use ioimc::Alphabet;

    /// tau chain into an observable action: all chain states equivalent.
    #[test]
    fn inert_tau_chain_collapses() {
        let mut ab = Alphabet::new();
        let tau = ab.intern("tau");
        let out = ab.intern("fail");
        let mut b = IoImcBuilder::new();
        b.set_internals([tau]).set_outputs([out]);
        let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
        b.interactive(s[0], tau, s[1])
            .interactive(s[1], tau, s[2])
            .interactive(s[2], out, s[3]);
        let imc = b.build().unwrap();
        let (p, _) = refine_branching(&imc, Partition::by_label(&imc));
        assert_eq!(p.num_blocks(), 2);
        assert!(p.same_block(0, 1) && p.same_block(1, 2));
    }

    /// A tau step into a state with different options is observable.
    #[test]
    fn non_inert_tau_preserved() {
        let mut ab = Alphabet::new();
        let tau = ab.intern("tau");
        let out = ab.intern("a");
        let mut b = IoImcBuilder::new();
        b.set_internals([tau]).set_outputs([out]);
        // s0 can do tau to s1 or a! to s2; s1 can only do a! to s2.
        // s0 and s1 are NOT branching bisimilar: s0 never loses the option
        // here (both reach a!)... they actually both just offer a!. The
        // tau from s0 to s1 is inert once they merge.
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        b.interactive(s[0], tau, s[1])
            .interactive(s[0], out, s[2])
            .interactive(s[1], out, s[2]);
        let imc = b.build().unwrap();
        let (p, _) = refine_branching(&imc, Partition::by_label(&imc));
        assert!(p.same_block(0, 1));
        assert_eq!(p.num_blocks(), 2);
    }

    /// Unstable state with an inert tau into a stable state inherits its
    /// rate signature (weak IMC bisimulation).
    #[test]
    fn unstable_merges_with_stable_successor() {
        let mut ab = Alphabet::new();
        let tau = ab.intern("tau");
        let mut b = IoImcBuilder::new();
        b.set_internals([tau]);
        // s2 is labeled so the rate into it is observable.
        let s: Vec<_> = (0..3)
            .map(|i| b.add_labeled_state(u64::from(i == 2)))
            .collect();
        // s0 -tau-> s1 -3.0-> s2
        b.interactive(s[0], tau, s[1]).markovian(s[1], 3.0, s[2]);
        let imc = b.build().unwrap();
        let (p, _) = refine_branching(&imc, Partition::by_label(&imc));
        assert!(p.same_block(0, 1));
        assert!(!p.same_block(0, 2));
    }

    /// Distinct rates must not merge even through tau abstraction.
    #[test]
    fn rates_still_distinguish() {
        let mut ab = Alphabet::new();
        let tau = ab.intern("tau");
        let mut b = IoImcBuilder::new();
        b.set_internals([tau]);
        // s3 is labeled so the differing rates into it are observable.
        let s: Vec<_> = (0..4)
            .map(|i| b.add_labeled_state(u64::from(i == 3)))
            .collect();
        b.interactive(s[0], tau, s[1])
            .markovian(s[1], 3.0, s[3])
            .markovian(s[2], 4.0, s[3]);
        let imc = b.build().unwrap();
        let (p, _) = refine_branching(&imc, Partition::by_label(&imc));
        assert!(p.same_block(0, 1));
        assert!(!p.same_block(1, 2));
    }

    /// Labels always separate, even across inert taus.
    #[test]
    fn labels_block_merging() {
        let mut ab = Alphabet::new();
        let tau = ab.intern("tau");
        let mut b = IoImcBuilder::new();
        b.set_internals([tau]);
        let s0 = b.add_labeled_state(0);
        let s1 = b.add_labeled_state(1);
        b.interactive(s0, tau, s1);
        let imc = b.build().unwrap();
        let (p, _) = refine_branching(&imc, Partition::by_label(&imc));
        assert_eq!(p.num_blocks(), 2);
    }

    /// The classic branching-bisim counterexample: tau that discards an
    /// option is observable.
    #[test]
    fn option_discarding_tau_is_observable() {
        let mut ab = Alphabet::new();
        let tau = ab.intern("tau");
        let a = ab.intern("a");
        let c = ab.intern("c");
        let mut b = IoImcBuilder::new();
        b.set_internals([tau]).set_outputs([a, c]);
        // s0: tau -> s1 (only a!), and c! -> s3. s1: a! -> s2.
        let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
        b.interactive(s[0], tau, s[1])
            .interactive(s[0], c, s[3])
            .interactive(s[1], a, s[2]);
        let imc = b.build().unwrap();
        let (p, _) = refine_branching(&imc, Partition::by_label(&imc));
        // s0 offers {tau->B(s1), c}, s1 offers {a}: must differ.
        assert!(!p.same_block(0, 1));
    }

    #[test]
    fn topological_order_is_complete_on_dags() {
        let mut ab = Alphabet::new();
        let tau = ab.intern("tau");
        let mut b = IoImcBuilder::new();
        b.set_internals([tau]);
        let s: Vec<_> = (0..5).map(|_| b.add_state()).collect();
        b.interactive(s[0], tau, s[1])
            .interactive(s[0], tau, s[2])
            .interactive(s[1], tau, s[3])
            .interactive(s[2], tau, s[3]);
        let imc = b.build().unwrap();
        let order = tau_topological_order(&imc);
        assert_eq!(order.len(), 5);
        let pos: Vec<_> = {
            let mut pos = vec![0; 5];
            for (i, &st) in order.iter().enumerate() {
                pos[st as usize] = i;
            }
            pos
        };
        assert!(pos[1] < pos[0] && pos[3] < pos[1] && pos[3] < pos[2]);
    }
}
