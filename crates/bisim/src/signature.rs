//! Signature entries for partition refinement.

use ioimc::{ActionId, IoImc, StateId};

/// Number of low mantissa bits dropped when comparing Markovian rate sums.
///
/// Summation order can perturb the last few bits of a rate sum; dropping 20
/// bits (~2⁻³² relative, i.e. agreement to ~9 decimal digits) makes states
/// with mathematically equal rate sums hash identically while still
/// distinguishing genuinely different rates.
const RATE_DROP_BITS: u32 = 20;

/// Quantizes a rate for hashing/equality in signatures.
pub fn quantize_rate(r: f64) -> u64 {
    debug_assert!(r.is_finite());
    let bits = r.to_bits();
    let half = 1u64 << (RATE_DROP_BITS - 1);
    ((bits.saturating_add(half)) >> RATE_DROP_BITS) << RATE_DROP_BITS
}

/// One observation a state can make about the current partition.
///
/// Signatures are sorted, deduplicated `Vec<SigEntry>`; two states get the
/// same refined block iff they are in the same current block and have equal
/// signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SigEntry {
    /// A visible interactive step `--a-->` into block `b`.
    Act {
        /// The action taken.
        action: ActionId,
        /// The target block.
        block: u32,
    },
    /// An internal step into a *different* block (inert steps are elided).
    /// All internal actions are interchangeable, hence no action id.
    Tau {
        /// The target block.
        block: u32,
    },
    /// A Markovian move into block `b` with the quantized total rate.
    Rate {
        /// The target block.
        block: u32,
        /// Quantized rate sum (see [`quantize_rate`]).
        qrate: u64,
    },
}

/// A state's full signature: sorted and deduplicated entries.
pub type Signature = Vec<SigEntry>;

/// Sorts and deduplicates `sig` in place.
pub fn canonicalize(sig: &mut Signature) {
    sig.sort_unstable();
    sig.dedup();
}

/// Appends the Rate entries of `s` to `sig`: one entry per target block
/// with the quantized lumped rate, skipping the state's own block
/// (lumpability only constrains cross-block rates; intra-block rates are
/// unobservable quotient self-loops). `rates` is caller-provided scratch
/// so hot refinement loops avoid a per-state allocation; per-block sums
/// accumulate in transition order, exactly like the hash-map accumulation
/// this replaces, so rate sums are bit-identical.
pub(crate) fn push_rate_entries(
    imc: &IoImc,
    block_of: &[u32],
    s: StateId,
    sig: &mut Signature,
    rates: &mut Vec<(u32, f64)>,
) {
    let own = block_of[s as usize];
    rates.clear();
    for &(r, t) in imc.markovian_from(s) {
        let block = block_of[t as usize];
        if block == own {
            continue;
        }
        // Markovian out-degrees are small; a linear scan beats hashing.
        match rates.iter_mut().find(|&&mut (b, _)| b == block) {
            Some(&mut (_, ref mut acc)) => *acc += r,
            None => rates.push((block, r)),
        }
    }
    for &(block, r) in rates.iter() {
        sig.push(SigEntry::Rate {
            block,
            qrate: quantize_rate(r),
        });
    }
}

/// Hash-consed signature storage for the worklist refiner.
///
/// Every distinct (canonicalized) signature is stored once and identified
/// by a dense `u32` id, so "do these two states currently look alike?"
/// is an integer compare instead of a structural hash + compare of a
/// `Vec<SigEntry>`. Ids are assigned in interning order; the refiner
/// interns sequentially in a deterministic state order, so the table —
/// and everything derived from it — is identical across runs. Entries are
/// `Arc`-shared slices: parallel signature workers read them (the
/// branching signature of a state extends the signatures of its inert
/// successors) without cloning.
#[derive(Default)]
pub struct SigTable {
    map: ioimc::fxhash::FxHashMap<std::sync::Arc<[SigEntry]>, u32>,
    sigs: Vec<std::sync::Arc<[SigEntry]>>,
}

impl std::fmt::Debug for SigTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SigTable")
            .field("len", &self.sigs.len())
            .finish()
    }
}

impl SigTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `sig` (must already be canonicalized), returning its id.
    /// Equal signatures always receive equal ids.
    pub fn intern(&mut self, sig: Signature) -> u32 {
        debug_assert!(sig.windows(2).all(|w| w[0] < w[1]), "not canonicalized");
        if let Some(&id) = self.map.get(sig.as_slice()) {
            return id;
        }
        let arc: std::sync::Arc<[SigEntry]> = sig.into();
        let id = u32::try_from(self.sigs.len()).expect("more than u32::MAX signatures");
        self.sigs.push(arc.clone());
        self.map.insert(arc, id);
        id
    }

    /// [`SigTable::intern`] from a borrowed slice: the entries are copied
    /// into a fresh `Arc` only on a table miss. Hot loops compute each
    /// signature into a reusable scratch buffer and intern it through
    /// here, so the common case (signature already interned) allocates
    /// nothing.
    pub fn intern_slice(&mut self, sig: &[SigEntry]) -> u32 {
        debug_assert!(sig.windows(2).all(|w| w[0] < w[1]), "not canonicalized");
        if let Some(&id) = self.map.get(sig) {
            return id;
        }
        let arc: std::sync::Arc<[SigEntry]> = sig.into();
        let id = u32::try_from(self.sigs.len()).expect("more than u32::MAX signatures");
        self.sigs.push(arc.clone());
        self.map.insert(arc, id);
        id
    }

    /// The entries of the signature with the given id.
    pub fn get(&self, id: u32) -> &[SigEntry] {
        &self.sigs[id as usize]
    }

    /// Number of distinct signatures interned so far.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_merges_nearby() {
        let a = 0.1 + 0.2; // 0.30000000000000004
        let b = 0.3;
        assert_eq!(quantize_rate(a), quantize_rate(b));
    }

    #[test]
    fn quantize_distinguishes_distinct() {
        assert_ne!(quantize_rate(1.0), quantize_rate(1.0001));
        assert_ne!(quantize_rate(5.44e-6), quantize_rate(10.88e-6));
    }

    #[test]
    fn canonicalize_sorts_and_dedups() {
        let mut sig = vec![
            SigEntry::Tau { block: 2 },
            SigEntry::Act {
                action: ActionId(1),
                block: 0,
            },
            SigEntry::Tau { block: 2 },
        ];
        canonicalize(&mut sig);
        assert_eq!(sig.len(), 2);
        assert!(sig.windows(2).all(|w| w[0] <= w[1]));
    }
}
