//! Signature entries for partition refinement.

use ioimc::ActionId;

/// Number of low mantissa bits dropped when comparing Markovian rate sums.
///
/// Summation order can perturb the last few bits of a rate sum; dropping 20
/// bits (~2⁻³² relative, i.e. agreement to ~9 decimal digits) makes states
/// with mathematically equal rate sums hash identically while still
/// distinguishing genuinely different rates.
const RATE_DROP_BITS: u32 = 20;

/// Quantizes a rate for hashing/equality in signatures.
pub fn quantize_rate(r: f64) -> u64 {
    debug_assert!(r.is_finite());
    let bits = r.to_bits();
    let half = 1u64 << (RATE_DROP_BITS - 1);
    ((bits.saturating_add(half)) >> RATE_DROP_BITS) << RATE_DROP_BITS
}

/// One observation a state can make about the current partition.
///
/// Signatures are sorted, deduplicated `Vec<SigEntry>`; two states get the
/// same refined block iff they are in the same current block and have equal
/// signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SigEntry {
    /// A visible interactive step `--a-->` into block `b`.
    Act {
        /// The action taken.
        action: ActionId,
        /// The target block.
        block: u32,
    },
    /// An internal step into a *different* block (inert steps are elided).
    /// All internal actions are interchangeable, hence no action id.
    Tau {
        /// The target block.
        block: u32,
    },
    /// A Markovian move into block `b` with the quantized total rate.
    Rate {
        /// The target block.
        block: u32,
        /// Quantized rate sum (see [`quantize_rate`]).
        qrate: u64,
    },
}

/// A state's full signature: sorted and deduplicated entries.
pub type Signature = Vec<SigEntry>;

/// Sorts and deduplicates `sig` in place.
pub fn canonicalize(sig: &mut Signature) {
    sig.sort_unstable();
    sig.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_merges_nearby() {
        let a = 0.1 + 0.2; // 0.30000000000000004
        let b = 0.3;
        assert_eq!(quantize_rate(a), quantize_rate(b));
    }

    #[test]
    fn quantize_distinguishes_distinct() {
        assert_ne!(quantize_rate(1.0), quantize_rate(1.0001));
        assert_ne!(quantize_rate(5.44e-6), quantize_rate(10.88e-6));
    }

    #[test]
    fn canonicalize_sorts_and_dedups() {
        let mut sig = vec![
            SigEntry::Tau { block: 2 },
            SigEntry::Act {
                action: ActionId(1),
                block: 0,
            },
            SigEntry::Tau { block: 2 },
        ];
        canonicalize(&mut sig);
        assert_eq!(sig.len(), 2);
        assert!(sig.windows(2).all(|w| w[0] <= w[1]));
    }
}
