//! Elimination of vanishing states in closed models.
//!
//! After the full system has been composed, everything hidden, and the model
//! reduced, the remaining interactive transitions are internal and happen in
//! zero time. States with outgoing internal transitions are *vanishing*:
//! the sojourn time is zero, so they contribute nothing to any measure and
//! can be skipped by redirecting incoming Markovian transitions to the
//! stable state the tau path leads to. This is the final step before CTMC
//! extraction.
//!
//! Well-formed Arcade models are *weakly deterministic*: every vanishing
//! state reaches exactly one stable state (diamonds from interleaved urgent
//! signals have been merged by the preceding bisimulation reduction). A
//! vanishing state with several distinct stable successors signals genuine
//! nondeterminism that makes the stochastic process ill-defined; it is
//! reported as an error instead of being silently resolved.

use std::fmt;

use ioimc::{IoImc, StateId};

/// A vanishing state could silently reach more than one stable state (or a
/// tau cycle), so the model has no unique underlying CTMC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NondeterminismError {
    /// The offending state.
    pub state: StateId,
    /// The distinct stable states it can reach (empty for a tau cycle).
    pub targets: Vec<StateId>,
}

impl fmt::Display for NondeterminismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.targets.is_empty() {
            write!(
                f,
                "state {} diverges on an internal cycle; no stable successor",
                self.state
            )
        } else {
            write!(
                f,
                "state {} nondeterministically reaches stable states {:?}",
                self.state, self.targets
            )
        }
    }
}

impl std::error::Error for NondeterminismError {}

/// Eliminates vanishing states of a *closed* automaton (no inputs/outputs),
/// producing an automaton whose states are exactly the stable states of the
/// input and whose transitions are purely Markovian.
///
/// # Errors
///
/// Returns [`NondeterminismError`] if a vanishing state reaches more than
/// one stable state or lies on a tau cycle.
///
/// # Panics
///
/// Panics if the automaton still has inputs or outputs.
pub fn eliminate_vanishing(imc: &IoImc) -> Result<IoImc, NondeterminismError> {
    assert!(
        imc.inputs().is_empty() && imc.outputs().is_empty(),
        "eliminate_vanishing requires a closed automaton"
    );
    let n = imc.num_states();
    // resolve[s]: the unique stable state reachable from s via tau steps.
    let mut resolve: Vec<Option<StateId>> = vec![None; n];
    let mut visiting = vec![false; n];
    for s in 0..n as StateId {
        resolve_state(imc, s, &mut resolve, &mut visiting)?;
    }

    // Keep stable states only, renumbered in order.
    let mut stable_index: Vec<Option<StateId>> = vec![None; n];
    let mut stable: Vec<StateId> = Vec::new();
    for s in 0..n as StateId {
        if imc.interactive_from(s).is_empty() {
            stable_index[s as usize] = Some(stable.len() as StateId);
            stable.push(s);
        }
    }
    let map = |s: StateId| -> StateId {
        let r = resolve[s as usize].expect("resolved above");
        stable_index[r as usize].expect("resolution target is stable")
    };

    let markovian = stable
        .iter()
        .map(|&s| {
            imc.markovian_from(s)
                .iter()
                .map(|&(r, t)| (r, map(t)))
                .collect()
        })
        .collect();
    let labels = stable.iter().map(|&s| imc.label(s)).collect();
    let mut out = IoImc::from_parts_unchecked(
        map(imc.initial()),
        Vec::new(),
        Vec::new(),
        Vec::new(),
        vec![Vec::new(); stable.len()],
        markovian,
        labels,
    );
    if imc.forms().is_some() {
        out.attach_forms(
            stable
                .iter()
                .flat_map(|&s| {
                    imc.markovian_forms_from(s)
                        .expect("forms present")
                        .iter()
                        .cloned()
                })
                .collect(),
        );
    }
    out.normalize();
    Ok(ioimc::reach::restrict_reachable(&out))
}

fn resolve_state(
    imc: &IoImc,
    s: StateId,
    resolve: &mut Vec<Option<StateId>>,
    visiting: &mut Vec<bool>,
) -> Result<StateId, NondeterminismError> {
    if let Some(r) = resolve[s as usize] {
        return Ok(r);
    }
    if visiting[s as usize] {
        return Err(NondeterminismError {
            state: s,
            targets: Vec::new(),
        });
    }
    if imc.interactive_from(s).is_empty() {
        resolve[s as usize] = Some(s);
        return Ok(s);
    }
    visiting[s as usize] = true;
    let mut targets: Vec<StateId> = Vec::new();
    for &(_, t) in imc.interactive_from(s) {
        let r = resolve_state(imc, t, resolve, visiting)?;
        if !targets.contains(&r) {
            targets.push(r);
        }
    }
    visiting[s as usize] = false;
    if targets.len() != 1 {
        targets.sort_unstable();
        return Err(NondeterminismError { state: s, targets });
    }
    resolve[s as usize] = Some(targets[0]);
    Ok(targets[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioimc::builder::IoImcBuilder;
    use ioimc::Alphabet;

    fn tau_alpha() -> (Alphabet, ioimc::ActionId) {
        let mut ab = Alphabet::new();
        let tau = ab.intern("tau");
        (ab, tau)
    }

    #[test]
    fn chain_is_skipped() {
        let (_, tau) = tau_alpha();
        let mut b = IoImcBuilder::new();
        b.set_internals([tau]);
        let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
        // s0 -1.0-> s1 -tau-> s2 -tau-> s3 -2.0-> s0
        b.markovian(s[0], 1.0, s[1])
            .interactive(s[1], tau, s[2])
            .interactive(s[2], tau, s[3])
            .markovian(s[3], 2.0, s[0]);
        let imc = b.build().unwrap();
        let out = eliminate_vanishing(&imc).unwrap();
        assert_eq!(out.num_states(), 2);
        assert_eq!(out.num_interactive(), 0);
        assert_eq!(out.num_markovian(), 2);
    }

    #[test]
    fn confluent_diamond_is_merged() {
        let (_, tau) = tau_alpha();
        let mut b = IoImcBuilder::new();
        b.set_internals([tau]);
        let s: Vec<_> = (0..5).map(|_| b.add_state()).collect();
        // s0 -1.0-> s1; s1 -tau-> s2 -tau-> s4; s1 -tau-> s3 -tau-> s4
        b.markovian(s[0], 1.0, s[1])
            .interactive(s[1], tau, s[2])
            .interactive(s[2], tau, s[4])
            .interactive(s[1], tau, s[3])
            .interactive(s[3], tau, s[4]);
        let imc = b.build().unwrap();
        let out = eliminate_vanishing(&imc).unwrap();
        assert_eq!(out.num_states(), 2);
    }

    #[test]
    fn genuine_nondeterminism_is_reported() {
        let (_, tau) = tau_alpha();
        let mut b = IoImcBuilder::new();
        b.set_internals([tau]);
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        b.interactive(s[0], tau, s[1]).interactive(s[0], tau, s[2]);
        let imc = b.build().unwrap();
        let err = eliminate_vanishing(&imc).unwrap_err();
        assert_eq!(err.state, 0);
        assert_eq!(err.targets, vec![1, 2]);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn tau_cycle_is_reported() {
        let (_, tau) = tau_alpha();
        let mut b = IoImcBuilder::new();
        b.set_internals([tau]);
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.interactive(s0, tau, s1).interactive(s1, tau, s0);
        let imc = b.build().unwrap();
        let err = eliminate_vanishing(&imc).unwrap_err();
        assert!(err.targets.is_empty());
    }

    #[test]
    fn vanishing_initial_state_is_resolved() {
        let (_, tau) = tau_alpha();
        let mut b = IoImcBuilder::new();
        b.set_internals([tau]);
        let s0 = b.add_state();
        let s1 = b.add_labeled_state(1);
        b.interactive(s0, tau, s1);
        let imc = b.build().unwrap();
        let out = eliminate_vanishing(&imc).unwrap();
        assert_eq!(out.num_states(), 1);
        assert_eq!(out.label(out.initial()), 1);
    }
}
