//! Quotient construction.

use ioimc::{ActionId, IoImc, StateId};

use crate::partition::Partition;
use crate::signature::{SigEntry, Signature};

/// Builds the quotient automaton of `imc` under the fixpoint `part` with
/// per-state `sigs` (as returned by the refiners).
///
/// * Interactive transitions come from the block signature: `Act` entries
///   keep their action, `Tau` entries are emitted with the canonical `tau`
///   action.
/// * Markovian transitions are the lumped rates of a member that carries
///   rates (after the maximal-progress cut all such members agree up to
///   quantization).
/// * The label of a block is the label of its members (label-respecting
///   refinement guarantees they agree; we OR them defensively).
///
/// # Panics
///
/// Panics if `tau` is a visible (input/output) action of `imc`.
pub fn quotient(imc: &IoImc, part: &Partition, sigs: &[Signature], tau: ActionId) -> IoImc {
    quotient_inner(imc, part, |_, rep| sigs[rep as usize].as_slice(), tau)
}

/// [`quotient`] from one fixpoint signature per canonical *block* (as
/// produced by the worklist refiner), skipping the per-state signature
/// materialization. Identical output to [`quotient`] on the expanded
/// per-state view.
pub(crate) fn quotient_blocks(
    imc: &IoImc,
    part: &Partition,
    block_sigs: &[Signature],
    tau: ActionId,
) -> IoImc {
    quotient_inner(imc, part, |b, _| block_sigs[b].as_slice(), tau)
}

fn quotient_inner<'a>(
    imc: &IoImc,
    part: &Partition,
    sig_for: impl Fn(usize, StateId) -> &'a [SigEntry],
    tau: ActionId,
) -> IoImc {
    assert!(
        !imc.is_visible(tau),
        "canonical tau action must not be visible"
    );
    // Flat CSR membership: one counting sort, no per-block Vec allocations.
    let members = part.members_csr();
    let k = part.num_blocks();

    let mut interactive: Vec<Vec<(ActionId, StateId)>> = Vec::with_capacity(k);
    let mut markovian: Vec<Vec<(f64, StateId)>> = Vec::with_capacity(k);
    let carry_forms = imc.forms().is_some();
    let mut form_rows: Vec<ioimc::RateForm> = Vec::new();
    let mut labels: Vec<u64> = Vec::with_capacity(k);
    let mut uses_tau = false;
    let mut rates: Vec<(u32, f64)> = Vec::new();
    let mut rate_forms: Vec<ioimc::RateForm> = Vec::new();

    for b in 0..k {
        let rep = members.of(b)[0];
        // Interactive edges from the block's fixpoint signature.
        let mut inter = Vec::new();
        for &entry in sig_for(b, rep) {
            match entry {
                SigEntry::Act { action, block } => inter.push((action, block as StateId)),
                SigEntry::Tau { block } => {
                    uses_tau = true;
                    inter.push((tau, block as StateId));
                }
                SigEntry::Rate { .. } => {}
            }
        }
        // Markovian edges: exact lumped rates from a rate-carrying member.
        // Intra-block rates are dropped — they would be self-loops of the
        // quotient, which a CTMC generator cancels (and the refinement
        // accordingly never constrained them). Markovian out-degrees are
        // small, so a linear scan beats hashing; per-block sums accumulate
        // in transition order, exactly like the hash-map accumulation this
        // replaces, so rate sums are bit-identical.
        rates.clear();
        rate_forms.clear();
        if let Some(&carrier) = members
            .of(b)
            .iter()
            .find(|&&s| !imc.markovian_from(s).is_empty())
        {
            let carrier_forms = imc.markovian_forms_from(carrier);
            for (i, &(r, t)) in imc.markovian_from(carrier).iter().enumerate() {
                let tb = part.block_of(t);
                if tb != b as u32 {
                    match rates.iter_mut().position(|&mut (bb, _)| bb == tb) {
                        Some(j) => {
                            rates[j].1 += r;
                            if let Some(forms) = carrier_forms {
                                rate_forms[j].absorb(&forms[i]);
                            }
                        }
                        None => {
                            rates.push((tb, r));
                            if let Some(forms) = carrier_forms {
                                rate_forms.push(forms[i].clone());
                            }
                        }
                    }
                }
            }
        }
        // Sort by target block: accumulation order is not canonical, and
        // downstream rate-sum accumulation order must be reproducible
        // across processes for the bitwise-determinism guarantee.
        let mut order: Vec<u32> = (0..rates.len() as u32).collect();
        order.sort_unstable_by_key(|&i| rates[i as usize].0);
        let mark: Vec<(f64, StateId)> = order
            .iter()
            .map(|&i| {
                let (t, r) = rates[i as usize];
                (r, t as StateId)
            })
            .collect();
        if carry_forms {
            form_rows.extend(
                order
                    .iter()
                    .map(|&i| std::mem::take(&mut rate_forms[i as usize])),
            );
        }

        let label = members
            .of(b)
            .iter()
            .fold(0u64, |acc, &s| acc | imc.label(s));
        interactive.push(inter);
        markovian.push(mark);
        labels.push(label);
    }

    let mut internals = if uses_tau { vec![tau] } else { Vec::new() };
    internals.sort_unstable();
    let mut out = IoImc::from_parts_unchecked(
        part.block_of(imc.initial()) as StateId,
        imc.inputs().to_vec(),
        imc.outputs().to_vec(),
        internals,
        interactive,
        markovian,
        labels,
    );
    if carry_forms {
        out.attach_forms(form_rows);
    }
    out.normalize();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branching::refine_branching;
    use crate::strong::refine_strong;
    use ioimc::builder::IoImcBuilder;
    use ioimc::Alphabet;

    #[test]
    fn quotient_of_symmetric_diamond() {
        let mut ab = Alphabet::new();
        let tau = ab.intern("tau");
        let mut b = IoImcBuilder::new();
        // s3 labeled so the chain structure is observable
        let s: Vec<_> = (0..4)
            .map(|i| b.add_labeled_state(u64::from(i == 3)))
            .collect();
        b.markovian(s[0], 1.0, s[1])
            .markovian(s[0], 1.0, s[2])
            .markovian(s[1], 2.0, s[3])
            .markovian(s[2], 2.0, s[3]);
        let imc = b.build().unwrap();
        let (p, sigs) = refine_strong(&imc, Partition::by_label(&imc));
        let q = quotient(&imc, &p, &sigs, tau);
        assert_eq!(q.num_states(), 3);
        // initial block moves at total rate 2 into the merged middle block
        let init_rates = q.markovian_from(q.initial());
        assert_eq!(init_rates.len(), 1);
        assert!((init_rates[0].0 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quotient_rewrites_internals_to_tau() {
        let mut ab = Alphabet::new();
        let t1 = ab.intern("some.hidden.signal");
        let tau = ab.intern("tau");
        let mut b = IoImcBuilder::new();
        b.set_internals([t1]);
        let s0 = b.add_labeled_state(0);
        let s1 = b.add_labeled_state(1); // label forces the tau to stay
        b.interactive(s0, t1, s1);
        let imc = b.build().unwrap();
        let (p, sigs) = refine_branching(&imc, Partition::by_label(&imc));
        let q = quotient(&imc, &p, &sigs, tau);
        assert_eq!(q.num_states(), 2);
        assert_eq!(q.internals(), &[tau]);
        assert_eq!(q.iter_interactive().count(), 1);
        let (_, a, _) = q.iter_interactive().next().unwrap();
        assert_eq!(a, tau);
    }

    #[test]
    fn quotient_preserves_visible_signature() {
        let mut ab = Alphabet::new();
        let tau = ab.intern("tau");
        let inp = ab.intern("go");
        let out = ab.intern("done");
        let mut b = IoImcBuilder::new();
        b.set_inputs([inp]).set_outputs([out]);
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.interactive(s0, inp, s1).interactive(s1, out, s0);
        let imc = b.complete_inputs().build().unwrap();
        let (p, sigs) = refine_branching(&imc, Partition::by_label(&imc));
        let q = quotient(&imc, &p, &sigs, tau);
        assert_eq!(q.inputs(), &[inp]);
        assert_eq!(q.outputs(), &[out]);
        assert!(ioimc::validate::validate(&q).is_ok());
    }
}
