//! Bisimulation minimization for I/O-IMCs.
//!
//! This crate provides the *aggregation* step of Arcade's compositional
//! state-space generation (the role played by CADP's `bcg_min` in the
//! paper's toolchain):
//!
//! * [`strong`] — strong bisimulation with exact Markovian lumping,
//! * [`branching`] — branching (weak) bisimulation with Markovian lumping,
//!   implemented as signature-based partition refinement (Blom–Orzan style)
//!   on top of a maximal-progress cut and tau-SCC collapse,
//! * [`quotient`] — construction of the quotient automaton,
//! * [`vanishing`] — elimination of vanishing (zero-sojourn) states in
//!   closed models, the last step before CTMC extraction,
//! * [`pipeline::reduce`] — the one-call bundle used by the Arcade engine.
//!
//! All reductions are **label-respecting**: states with different labels
//! (e.g. the observer's "system down" bit) are never merged, so the measures
//! computed on the reduced model equal those of the original.
//!
//! # The worklist refiner
//!
//! Both refiners are implemented by a single splitter-driven worklist loop
//! ([`worklist`], internal). The first round signs every state; afterwards
//! only *dirty* states are re-signed: the states moved by the previous
//! round's splits plus their predecessors (over all transitions, via the
//! transposed CSR from [`ioimc::IoImc::incoming`]), closed under
//! tau-predecessors for branching signatures (which embed the signatures of
//! inert successors). Splits use a retained-id discipline — the sub-block
//! containing a block's first member keeps the block's id — so signature
//! entries of untouched states stay valid across rounds. Signatures are
//! hash-consed in a [`signature::SigTable`]; split comparisons are interned
//! `u32` ids, not structural.
//!
//! # Determinism discipline
//!
//! Threaded refinement is **bitwise identical** to serial at every thread
//! count: worker threads only evaluate the pure function
//! `(imc, partition, state) -> signature`, while interning, splitting, and
//! worklist ordering happen on the coordinating thread in a fixed order
//! (blocks ascending id, states ascending id within a block; tau-topological
//! order for branching). At the fixpoint the partition is renumbered
//! canonically by first occurrence in ascending state order, which
//! reproduces the legacy refiners' numbering exactly — the legacy loops
//! ([`strong::refine_strong_legacy`], [`branching::refine_branching_legacy`])
//! are kept as differential-testing oracles.
//!
//! # Cross-step incremental contract
//!
//! [`pipeline::reduce_seeded`] accepts an optional per-state hint — any
//! map under which equal states are candidates for equivalence, e.g. the
//! already-reduced left component of a [`ioimc::compose::parallel_with_pairs`]
//! product. The hint is met with the label partition to seed refinement.
//! Seeding is applied only for [`Strategy::Branching`], whose fixpoint loop
//! re-coarsens from a finer-than-coarsest start; the quotient is the same
//! automaton up to the order rate sums are accumulated (≤ 1e-12 on the
//! pinned measures). Renumbering passes (`restrict_reachable`,
//! `collapse_tau_sccs`) carry the hint through their new→old provenance
//! maps.
//!
//! Because the seed starts *finer* than the label partition, a
//! from-labels pass must still confirm (and usually re-coarsen) the
//! seeded quotient. Whether the carry pays therefore depends on how much
//! cross-hint merging minimization performs: on strongly symmetric
//! models (the RCS pump lines) it forbids exactly the merges that shrink
//! the product, and measurements show a fresh worklist refinement is
//! faster — which is why the engine defaults to fresh and keeps the
//! seeded path selectable.
//!
//! # Example
//!
//! A Markovian diamond whose completion is observable reduces only where
//! rates allow:
//!
//! ```
//! use ioimc::{Alphabet, builder::IoImcBuilder};
//! use bisim::pipeline::{reduce, ReduceOptions, Strategy};
//!
//! let mut ab = Alphabet::new();
//! let tau = ab.intern("tau");
//! let mut b = IoImcBuilder::new();
//! // diamond: s0 branches to s1 and s2, both fall into s3 at rate 2
//! let s = [b.add_state(), b.add_state(), b.add_state(), b.add_labeled_state(1)];
//! b.markovian(s[0], 1.0, s[1])
//!     .markovian(s[0], 2.0, s[2])
//!     .markovian(s[1], 2.0, s[3])
//!     .markovian(s[2], 2.0, s[3]);
//! let imc = b.build().unwrap();
//! let red = reduce(&imc, &ReduceOptions { strategy: Strategy::Branching, tau }).imc;
//! assert_eq!(red.num_states(), 3); // s1 and s2 are lumped (equal rate vectors)
//! // ... and s0 now enters the merged class at total rate 3
//! let total: f64 = red.markovian_from(red.initial()).iter().map(|t| t.0).sum();
//! assert!((total - 3.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branching;
pub mod partition;
pub mod pipeline;
pub mod quotient;
pub mod signature;
pub mod strong;
pub mod vanishing;
pub(crate) mod worklist;

pub use partition::Partition;
pub use pipeline::{
    reduce, reduce_legacy, reduce_seeded, reduce_threaded, ReduceOptions, Reduced, RefineStats,
    Strategy,
};
pub use vanishing::NondeterminismError;

/// Minimum number of states (or states per tau layer) before the
/// refinement loops fan signature computation out to worker threads;
/// below this the per-iteration spawn overhead outweighs the work.
pub(crate) const PAR_STATE_THRESHOLD: usize = 4096;
