//! Bisimulation minimization for I/O-IMCs.
//!
//! This crate provides the *aggregation* step of Arcade's compositional
//! state-space generation (the role played by CADP's `bcg_min` in the
//! paper's toolchain):
//!
//! * [`strong`] — strong bisimulation with exact Markovian lumping,
//! * [`branching`] — branching (weak) bisimulation with Markovian lumping,
//!   implemented as signature-based partition refinement (Blom–Orzan style)
//!   on top of a maximal-progress cut and tau-SCC collapse,
//! * [`quotient`] — construction of the quotient automaton,
//! * [`vanishing`] — elimination of vanishing (zero-sojourn) states in
//!   closed models, the last step before CTMC extraction,
//! * [`pipeline::reduce`] — the one-call bundle used by the Arcade engine.
//!
//! All reductions are **label-respecting**: states with different labels
//! (e.g. the observer's "system down" bit) are never merged, so the measures
//! computed on the reduced model equal those of the original.
//!
//! # Example
//!
//! A Markovian diamond whose completion is observable reduces only where
//! rates allow:
//!
//! ```
//! use ioimc::{Alphabet, builder::IoImcBuilder};
//! use bisim::pipeline::{reduce, ReduceOptions, Strategy};
//!
//! let mut ab = Alphabet::new();
//! let tau = ab.intern("tau");
//! let mut b = IoImcBuilder::new();
//! // diamond: s0 branches to s1 and s2, both fall into s3 at rate 2
//! let s = [b.add_state(), b.add_state(), b.add_state(), b.add_labeled_state(1)];
//! b.markovian(s[0], 1.0, s[1])
//!     .markovian(s[0], 2.0, s[2])
//!     .markovian(s[1], 2.0, s[3])
//!     .markovian(s[2], 2.0, s[3]);
//! let imc = b.build().unwrap();
//! let red = reduce(&imc, &ReduceOptions { strategy: Strategy::Branching, tau }).imc;
//! assert_eq!(red.num_states(), 3); // s1 and s2 are lumped (equal rate vectors)
//! // ... and s0 now enters the merged class at total rate 3
//! let total: f64 = red.markovian_from(red.initial()).iter().map(|t| t.0).sum();
//! assert!((total - 3.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branching;
pub mod partition;
pub mod pipeline;
pub mod quotient;
pub mod signature;
pub mod strong;
pub mod vanishing;

pub use partition::Partition;
pub use pipeline::{reduce, reduce_threaded, ReduceOptions, Reduced, Strategy};
pub use vanishing::NondeterminismError;

/// Minimum number of states (or states per tau layer) before the
/// refinement loops fan signature computation out to worker threads;
/// below this the per-iteration spawn overhead outweighs the work.
pub(crate) const PAR_STATE_THRESHOLD: usize = 4096;
