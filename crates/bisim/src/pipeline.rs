//! The aggregation pipeline used after every composition step.

use std::time::Instant;

use ioimc::mp::maximal_progress_cut;
use ioimc::reach::{restrict_reachable, restrict_reachable_with_map};
use ioimc::scc::{collapse_tau_sccs, collapse_tau_sccs_with_map};
use ioimc::{ActionId, IoImc, Stats};

use crate::branching::{refine_branching, refine_branching_legacy};
use crate::partition::Partition;
use crate::quotient::{quotient, quotient_blocks};
use crate::strong::{refine_strong, refine_strong_legacy};
use crate::worklist::{refine_worklist_blocks, Mode, RefineCounters};

/// Which equivalence to minimize with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strategy {
    /// No minimization: reachability restriction and maximal-progress cut
    /// only. Used by the "no aggregation" ablation.
    None,
    /// Strong bisimulation with exact lumping.
    Strong,
    /// Branching (weak) bisimulation with lumping — the equivalence the
    /// paper's toolchain minimizes with; the default.
    #[default]
    Branching,
}

/// Options for [`reduce`].
#[derive(Debug, Clone, Copy)]
pub struct ReduceOptions {
    /// The equivalence to use.
    pub strategy: Strategy,
    /// Canonical internal action used for residual tau transitions in
    /// quotients. Must not be a visible action of any automaton involved.
    pub tau: ActionId,
}

/// Aggregation-phase breakdown of one [`reduce`] call (or the sum over a
/// whole aggregation run): where refinement time goes and how much work
/// the worklist discipline actually performed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RefineStats {
    /// Refinement rounds across all refine calls (≥ 1 per call).
    pub refine_rounds: u64,
    /// Per-state signature computations (the work the worklist saves:
    /// the legacy loop's count is `rounds × states`).
    pub states_resigned: u64,
    /// Wall time computing and interning signatures.
    pub signature_secs: f64,
    /// Wall time splitting blocks and propagating dirtiness.
    pub split_secs: f64,
    /// Wall time building quotient automata.
    pub quotient_secs: f64,
}

impl RefineStats {
    /// Accumulates `other` into `self` (counter and time sums).
    pub fn merge(&mut self, other: &RefineStats) {
        self.refine_rounds += other.refine_rounds;
        self.states_resigned += other.states_resigned;
        self.signature_secs += other.signature_secs;
        self.split_secs += other.split_secs;
        self.quotient_secs += other.quotient_secs;
    }

    fn absorb(&mut self, counters: &RefineCounters) {
        self.refine_rounds += counters.rounds;
        self.states_resigned += counters.states_resigned;
        self.signature_secs += counters.signature_secs;
        self.split_secs += counters.split_secs;
    }
}

/// Result of [`reduce`]: the minimized automaton plus before/after sizes
/// (the paper reports the *largest intermediate* model, so callers track
/// these).
#[derive(Debug, Clone)]
pub struct Reduced {
    /// The reduced automaton.
    pub imc: IoImc,
    /// Size before reduction.
    pub before: Stats,
    /// Size after reduction.
    pub after: Stats,
    /// Where the reduction time went (zeroed by [`reduce_legacy`]).
    pub refine: RefineStats,
}

/// Reduces `imc`: reachability restriction, tau-cycle collapse,
/// maximal-progress cut, then partition refinement and quotient under the
/// chosen [`Strategy`]. The reduction is label-respecting and preserves
/// weak-bisimulation equivalence (hence all Arcade measures).
pub fn reduce(imc: &IoImc, opts: &ReduceOptions) -> Reduced {
    reduce_threaded(imc, opts, 1)
}

/// [`reduce`] with the per-state signature computation of the refinement
/// loops spread over `threads` scoped workers. The result is bitwise
/// identical for every thread count.
pub fn reduce_threaded(imc: &IoImc, opts: &ReduceOptions, threads: usize) -> Reduced {
    reduce_seeded(imc, opts, threads, None)
}

/// [`reduce_threaded`] with an optional initial-partition hint carried
/// from an earlier pipeline step (see the crate docs for the cross-step
/// incremental contract).
///
/// `seed` gives an arbitrary (not necessarily dense) group id per state of
/// `imc`; the refinement starts from the *meet* of the label partition and
/// the hint instead of from labels alone. Since the hint can separate
/// states the coarsest partition would merge, a seeded single refinement
/// pass may yield a non-minimal (though always stable and sound) quotient;
/// the hint is therefore only applied under [`Strategy::Branching`], whose
/// re-refinement loop restarts from labels on the (much smaller) quotient
/// and restores the coarsest fixpoint. Final states and partition blocks
/// are identical to the unseeded path; lumped rates are accumulated through
/// the intermediate quotient, so they can differ from the unseeded path in
/// the last floating-point bits (well below the `1e-10` measure gates).
pub fn reduce_seeded(
    imc: &IoImc,
    opts: &ReduceOptions,
    threads: usize,
    seed: Option<&[u32]>,
) -> Reduced {
    let before = Stats::of(imc);
    let mut refine = RefineStats::default();
    // The hint only helps Branching (see above); drop it otherwise rather
    // than change the Strong/None results.
    let seed = match opts.strategy {
        Strategy::Branching => seed,
        Strategy::None | Strategy::Strong => None,
    };
    // Prefix passes, carrying the per-state hint through each renumbering
    // when present.
    let mut carry: Option<Vec<u32>> = None;
    let mut cur = match seed {
        None => restrict_reachable(imc),
        Some(hint) => {
            let (r, old_of) = restrict_reachable_with_map(imc);
            carry = Some(old_of.iter().map(|&o| hint[o as usize]).collect());
            r
        }
    };
    if opts.strategy != Strategy::None || !cur.internals().is_empty() {
        match &mut carry {
            None => cur = collapse_tau_sccs(&cur),
            Some(hint) => {
                let (r, old_of) = collapse_tau_sccs_with_map(&cur);
                *hint = old_of.iter().map(|&o| hint[o as usize]).collect();
                cur = r;
            }
        }
    }
    maximal_progress_cut(&mut cur); // in place: no renumbering
    match &mut carry {
        None => cur = restrict_reachable(&cur),
        Some(hint) => {
            let (r, old_of) = restrict_reachable_with_map(&cur);
            *hint = old_of.iter().map(|&o| hint[o as usize]).collect();
            cur = r;
        }
    }
    match opts.strategy {
        Strategy::None => {}
        Strategy::Strong => {
            let mut counters = RefineCounters::default();
            let (p, sigs) = refine_worklist_blocks(
                &cur,
                &Partition::by_label(&cur),
                threads,
                Mode::Strong,
                &mut counters,
            );
            refine.absorb(&counters);
            let t0 = Instant::now();
            cur = quotient_blocks(&cur, &p, &sigs, opts.tau);
            refine.quotient_secs += t0.elapsed().as_secs_f64();
            cur = restrict_reachable(&cur);
        }
        Strategy::Branching => {
            // Quotients can expose new tau cycles between blocks that were
            // separated by labels; iterate to a fixpoint (usually 1 round).
            // The first round may start from a carried hint; later rounds
            // restart from labels, which also erases any over-splitting the
            // hint introduced.
            let mut first = true;
            loop {
                let states_before = cur.num_states();
                let seeded_round = first && carry.is_some();
                let initial = match (&carry, seeded_round) {
                    (Some(hint), true) => Partition::by_label(&cur).meet(hint),
                    _ => Partition::by_label(&cur),
                };
                first = false;
                let mut counters = RefineCounters::default();
                let (p, sigs) =
                    refine_worklist_blocks(&cur, &initial, threads, Mode::Branching, &mut counters);
                refine.absorb(&counters);
                let t0 = Instant::now();
                cur = quotient_blocks(&cur, &p, &sigs, opts.tau);
                refine.quotient_secs += t0.elapsed().as_secs_f64();
                let q_sizes = (cur.num_states(), cur.num_interactive(), cur.num_markovian());
                cur = collapse_tau_sccs(&cur);
                maximal_progress_cut(&mut cur);
                cur = restrict_reachable(&cur);
                // A seeded round may be over-split by the hint, so it never
                // terminates the loop: the following from-labels round on
                // its (already shrunken) quotient restores the coarsest
                // fixpoint.
                if seeded_round {
                    continue;
                }
                // The quotient of the *coarsest* stable partition has
                // pairwise non-bisimilar states, so if the post passes left
                // it untouched (no tau cycle collapsed, no rate cut, no
                // state unreachable — the only things that could re-enable
                // merging), re-refining it is a provable no-op: stop
                // without the confirming pass the legacy loop pays for.
                if (cur.num_states(), cur.num_interactive(), cur.num_markovian()) == q_sizes
                    || cur.num_states() >= states_before
                {
                    break;
                }
            }
        }
    }
    let after = Stats::of(&cur);
    Reduced {
        imc: cur,
        before,
        after,
        refine,
    }
}

/// [`reduce`] built on the pre-worklist recompute-all refinement loops
/// ([`refine_strong_legacy`] / [`refine_branching_legacy`]), serial only.
/// Kept as the differential-testing oracle: the `exp_scaling --smoke`
/// gate asserts its quotient matches the worklist path on the full
/// `rcs_scaled` aggregation. `refine` counters are left zeroed.
pub fn reduce_legacy(imc: &IoImc, opts: &ReduceOptions) -> Reduced {
    let before = Stats::of(imc);
    let mut cur = restrict_reachable(imc);
    if opts.strategy != Strategy::None || !cur.internals().is_empty() {
        cur = collapse_tau_sccs(&cur);
    }
    maximal_progress_cut(&mut cur);
    cur = restrict_reachable(&cur);
    match opts.strategy {
        Strategy::None => {}
        Strategy::Strong => {
            let (p, sigs) = refine_strong_legacy(&cur, Partition::by_label(&cur));
            cur = quotient(&cur, &p, &sigs, opts.tau);
            cur = restrict_reachable(&cur);
        }
        Strategy::Branching => loop {
            let states_before = cur.num_states();
            let (p, sigs) = refine_branching_legacy(&cur, Partition::by_label(&cur));
            cur = quotient(&cur, &p, &sigs, opts.tau);
            cur = collapse_tau_sccs(&cur);
            maximal_progress_cut(&mut cur);
            cur = restrict_reachable(&cur);
            if cur.num_states() >= states_before {
                break;
            }
        },
    }
    let after = Stats::of(&cur);
    Reduced {
        imc: cur,
        before,
        after,
        refine: RefineStats::default(),
    }
}

/// Checks whether two automata with identical visible signatures are
/// equivalent under the given strategy, by refining their disjoint union
/// and comparing the initial blocks. Intended for tests and debugging.
///
/// # Panics
///
/// Panics if the visible signatures differ.
pub fn equivalent(a: &IoImc, b: &IoImc, opts: &ReduceOptions) -> bool {
    assert_eq!(a.inputs(), b.inputs(), "input signatures differ");
    assert_eq!(a.outputs(), b.outputs(), "output signatures differ");
    let ra = reduce(a, opts).imc;
    let rb = reduce(b, opts).imc;
    let u = disjoint_union(&ra, &rb);
    let init_b = ra.num_states() as u32 + rb.initial();
    let part = match opts.strategy {
        Strategy::None | Strategy::Strong => refine_strong(&u, Partition::by_label(&u)).0,
        Strategy::Branching => refine_branching(&u, Partition::by_label(&u)).0,
    };
    part.same_block(ra.initial(), init_b)
}

/// Disjoint union of two automata (initial state taken from `a`).
fn disjoint_union(a: &IoImc, b: &IoImc) -> IoImc {
    let off = a.num_states() as u32;
    let mut inputs: Vec<ActionId> = a.inputs().iter().chain(b.inputs()).copied().collect();
    inputs.sort_unstable();
    inputs.dedup();
    let mut outputs: Vec<ActionId> = a.outputs().iter().chain(b.outputs()).copied().collect();
    outputs.sort_unstable();
    outputs.dedup();
    let mut internals: Vec<ActionId> = a.internals().iter().chain(b.internals()).copied().collect();
    internals.sort_unstable();
    internals.dedup();
    let mut interactive: Vec<Vec<(ActionId, u32)>> = (0..a.num_states() as u32)
        .map(|s| a.interactive_from(s).to_vec())
        .collect();
    interactive.extend((0..b.num_states() as u32).map(|s| {
        b.interactive_from(s)
            .iter()
            .map(|&(x, t)| (x, t + off))
            .collect::<Vec<_>>()
    }));
    let mut markovian: Vec<Vec<(f64, u32)>> = (0..a.num_states() as u32)
        .map(|s| a.markovian_from(s).to_vec())
        .collect();
    markovian.extend((0..b.num_states() as u32).map(|s| {
        b.markovian_from(s)
            .iter()
            .map(|&(r, t)| (r, t + off))
            .collect::<Vec<_>>()
    }));
    let labels = a.labels().iter().chain(b.labels()).copied().collect();
    IoImc::from_parts_unchecked(
        a.initial(),
        inputs,
        outputs,
        internals,
        interactive,
        markovian,
        labels,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioimc::builder::IoImcBuilder;
    use ioimc::Alphabet;

    fn opts(ab: &mut Alphabet, strategy: Strategy) -> ReduceOptions {
        ReduceOptions {
            strategy,
            tau: ab.intern("tau"),
        }
    }

    /// A hidden handshake between two components reduces to a single
    /// exponential step (the final state is labeled so it stays
    /// observable; the vanishing intermediate state is then removed by
    /// `eliminate_vanishing`).
    #[test]
    fn hidden_handshake_vanishes() {
        let mut ab = Alphabet::new();
        let sync = ab.intern("sync");
        let mut b = IoImcBuilder::new();
        b.set_internals([sync]);
        let s: Vec<_> = (0..3)
            .map(|i| b.add_labeled_state(u64::from(i == 2)))
            .collect();
        b.markovian(s[0], 4.0, s[1]).interactive(s[1], sync, s[2]);
        let imc = b.build().unwrap();
        let o = opts(&mut ab, Strategy::Branching);
        let red = reduce(&imc, &o);
        // labels keep s2 apart from s1 (the tau is label-changing)
        assert_eq!(red.before.states, 3);
        let chain = crate::vanishing::eliminate_vanishing(&red.imc).unwrap();
        assert_eq!(chain.num_states(), 2);
        assert_eq!(chain.num_markovian(), 1);
        assert!((chain.markovian_from(chain.initial())[0].0 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn none_strategy_only_prunes() {
        let mut ab = Alphabet::new();
        let sync = ab.intern("sync");
        let mut b = IoImcBuilder::new();
        b.set_internals([sync]);
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        b.markovian(s[0], 4.0, s[1]).interactive(s[1], sync, s[2]);
        let imc = b.build().unwrap();
        let o = opts(&mut ab, Strategy::None);
        let red = reduce(&imc, &o);
        assert_eq!(red.imc.num_states(), 3);
    }

    #[test]
    fn strong_reduces_less_than_branching() {
        let mut ab = Alphabet::new();
        let hidden = ab.intern("h");
        let mut b = IoImcBuilder::new();
        b.set_internals([hidden]);
        let s: Vec<_> = (0..4)
            .map(|i| b.add_labeled_state(u64::from(i == 3)))
            .collect();
        b.markovian(s[0], 1.0, s[1])
            .interactive(s[1], hidden, s[2])
            .interactive(s[2], hidden, s[3]);
        let imc = b.build().unwrap();
        let strong_states = reduce(&imc, &opts(&mut ab, Strategy::Strong))
            .imc
            .num_states();
        let branching_states = reduce(&imc, &opts(&mut ab, Strategy::Branching))
            .imc
            .num_states();
        assert!(branching_states <= strong_states);
        // branching collapses the inert tau chain s1 -> s2 (same label);
        // s3 stays apart (label) and s0 keeps the rate: 3 states.
        assert_eq!(branching_states, 3);
    }

    #[test]
    fn equivalent_detects_equality_and_difference() {
        let mut ab = Alphabet::new();
        let out = ab.intern("done");
        let mk = |rate: f64| {
            let mut b = IoImcBuilder::new();
            b.set_outputs([out]);
            let s0 = b.add_state();
            let s1 = b.add_state();
            b.markovian(s0, rate, s1).interactive(s1, out, s0);
            b.build().unwrap()
        };
        let o = opts(&mut ab, Strategy::Branching);
        assert!(equivalent(&mk(2.0), &mk(2.0), &o));
        assert!(!equivalent(&mk(2.0), &mk(3.0), &o));
    }

    /// The threaded refiners are a scheduling change only: the reduced
    /// automaton must be identical (not just equivalent) for any worker
    /// count. The model is built wide enough (both in total states and in
    /// the tau layers) to clear `PAR_STATE_THRESHOLD`, so the parallel
    /// code paths really run.
    #[test]
    fn threaded_reduce_is_bitwise_identical() {
        let width = 2 * crate::PAR_STATE_THRESHOLD;
        let mut ab = Alphabet::new();
        let tau = ab.intern("tau");
        let out = ab.intern("alarm");
        let mut b = IoImcBuilder::new();
        b.set_internals([tau]).set_outputs([out]);
        let hub = b.add_labeled_state(1 << 60);
        // `width` labeled sinks with varying rate structure (tau layer 0)
        // and one tau state above each (tau layer 1).
        let sinks: Vec<_> = (0..width)
            .map(|i| b.add_labeled_state(1 << (i % 5)))
            .collect();
        for (i, &s) in sinks.iter().enumerate() {
            b.markovian(s, 1.0 + (i % 7) as f64, hub);
            let t = b.add_state();
            b.interactive(t, tau, s);
            if i % 3 == 0 {
                b.interactive(t, out, hub);
            }
            b.markovian(hub, 0.25 + (i % 4) as f64, t);
        }
        let imc = b.build().unwrap();
        for strategy in [Strategy::Strong, Strategy::Branching] {
            let o = opts(&mut ab, strategy);
            let seq = reduce(&imc, &o);
            for threads in [2, 4, 8] {
                let par = reduce_threaded(&imc, &o, threads);
                assert_eq!(par.imc, seq.imc, "{strategy:?} with {threads} threads");
                assert_eq!(par.after, seq.after);
            }
        }
    }

    /// Reduction must preserve the total rate structure of a birth-death
    /// chain exactly.
    #[test]
    fn preserves_birth_death_chain() {
        let mut ab = Alphabet::new();
        let mut b = IoImcBuilder::new();
        let s: Vec<_> = (0..3)
            .map(|i| b.add_labeled_state(u64::from(i == 2)))
            .collect();
        b.markovian(s[0], 1.0, s[1])
            .markovian(s[1], 2.0, s[0])
            .markovian(s[1], 3.0, s[2])
            .markovian(s[2], 4.0, s[1]);
        let imc = b.build().unwrap();
        let o = opts(&mut ab, Strategy::Branching);
        let red = reduce(&imc, &o);
        assert_eq!(red.imc.num_states(), 3);
        assert_eq!(red.imc.num_markovian(), 4);
    }
}
