//! Strong bisimulation with Markovian lumping.
//!
//! Two states are strongly bisimilar iff they can match each other's
//! interactive transitions action-by-action into equivalent states and have
//! equal cumulative Markovian rates into every equivalence class (ordinary
//! lumpability). Internal actions are treated like visible ones (no
//! abstraction), which is why strong bisimulation reduces less than
//! branching bisimulation but is cheaper — the ablation experiment A1
//! compares the two.

use std::collections::HashMap;

use ioimc::{ActionKind, IoImc, StateId};

use crate::partition::Partition;
use crate::signature::{canonicalize, push_rate_entries, SigEntry, Signature};

/// Refines `initial` to the coarsest strong-bisimulation partition of
/// `imc`, returning the partition and the fixpoint signature of each state.
///
/// Implemented by the worklist/splitter refiner (see [`crate::worklist`]):
/// only states whose signature can have changed since the last round are
/// re-signed. The result — partition numbering and signatures — is
/// identical to [`refine_strong_legacy`].
pub fn refine_strong(imc: &IoImc, initial: Partition) -> (Partition, Vec<Signature>) {
    refine_strong_threaded(imc, initial, 1)
}

/// [`refine_strong`] with the per-state signature computation spread over
/// `threads` scoped workers.
///
/// Signatures are pure functions of `(imc, partition, state)` and are
/// interned on the coordinating thread in ascending state order, so the
/// refinement — and the resulting partition — is bitwise identical for
/// every thread count; the split step itself stays sequential.
pub fn refine_strong_threaded(
    imc: &IoImc,
    initial: Partition,
    threads: usize,
) -> (Partition, Vec<Signature>) {
    let mut counters = crate::worklist::RefineCounters::default();
    crate::worklist::refine_worklist(
        imc,
        &initial,
        threads,
        crate::worklist::Mode::Strong,
        &mut counters,
    )
}

/// The pre-worklist refinement loop: recomputes every state's signature on
/// every round. Kept (serial only) as the differential-testing oracle for
/// the worklist refiner — the proptests in this crate and the
/// `exp_scaling --smoke` gate assert both produce identical partitions and
/// quotients. Not a supported hot path.
pub fn refine_strong_legacy(imc: &IoImc, initial: Partition) -> (Partition, Vec<Signature>) {
    let n = imc.num_states();
    let mut part = initial;
    let mut sigs: Vec<Signature> = vec![Vec::new(); n];
    loop {
        for s in 0..n as StateId {
            sigs[s as usize] = strong_signature(imc, part.blocks(), s);
        }
        let next = split(&part, &sigs);
        if next.num_blocks() == part.num_blocks() {
            return (next, sigs);
        }
        part = next;
    }
}

/// The strong signature of `s` against the per-state block array.
pub(crate) fn strong_signature(imc: &IoImc, block_of: &[u32], s: StateId) -> Signature {
    let mut sig: Signature = Vec::new();
    let mut rates: Vec<(u32, f64)> = Vec::new();
    strong_signature_into(imc, block_of, s, &mut sig, &mut rates);
    sig
}

/// [`strong_signature`] into caller-provided buffers: `sig` receives the
/// canonicalized signature, `rates` is rate-accumulation scratch. Hot
/// refinement loops reuse both across states to avoid per-state heap
/// allocation.
pub(crate) fn strong_signature_into(
    imc: &IoImc,
    block_of: &[u32],
    s: StateId,
    sig: &mut Signature,
    rates: &mut Vec<(u32, f64)>,
) {
    sig.clear();
    for &(a, t) in imc.interactive_from(s) {
        let block = block_of[t as usize];
        match imc.kind_of(a) {
            Some(ActionKind::Internal) => sig.push(SigEntry::Tau { block }),
            _ => sig.push(SigEntry::Act { action: a, block }),
        }
    }
    push_rate_entries(imc, block_of, s, sig, rates);
    canonicalize(sig);
}

/// Splits every block of `part` by signature, producing the refined
/// partition. Shared by the strong and branching refiners.
pub(crate) fn split(part: &Partition, sigs: &[Signature]) -> Partition {
    let mut ids: HashMap<(u32, &Signature), u32> = HashMap::new();
    let mut block = Vec::with_capacity(sigs.len());
    for (s, sig) in sigs.iter().enumerate() {
        let key = (part.block_of(s as StateId), sig);
        let next = ids.len() as u32;
        block.push(*ids.entry(key).or_insert(next));
    }
    let num = ids.len();
    Partition::from_blocks(block, num)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioimc::builder::IoImcBuilder;
    use ioimc::Alphabet;

    #[test]
    fn lumps_symmetric_rates() {
        // s0 -1-> s1 -2-> s3, s0 -1-> s2 -2-> s3: s1 ~ s2 (s3 labeled so
        // the rates are observable)
        let mut b = IoImcBuilder::new();
        let s: Vec<_> = (0..4)
            .map(|i| b.add_labeled_state(u64::from(i == 3)))
            .collect();
        b.markovian(s[0], 1.0, s[1])
            .markovian(s[0], 1.0, s[2])
            .markovian(s[1], 2.0, s[3])
            .markovian(s[2], 2.0, s[3]);
        let imc = b.build().unwrap();
        let (p, _) = refine_strong(&imc, Partition::by_label(&imc));
        assert_eq!(p.num_blocks(), 3);
        assert!(p.same_block(1, 2));
    }

    #[test]
    fn distinguishes_rates() {
        let mut b = IoImcBuilder::new();
        let s: Vec<_> = (0..4)
            .map(|i| b.add_labeled_state(u64::from(i == 3)))
            .collect();
        b.markovian(s[0], 1.0, s[1])
            .markovian(s[0], 1.0, s[2])
            .markovian(s[1], 2.0, s[3])
            .markovian(s[2], 3.0, s[3]);
        let imc = b.build().unwrap();
        let (p, _) = refine_strong(&imc, Partition::by_label(&imc));
        assert!(!p.same_block(1, 2));
    }

    #[test]
    fn respects_labels() {
        let mut b = IoImcBuilder::new();
        let s0 = b.add_labeled_state(0);
        let s1 = b.add_labeled_state(1);
        b.markovian(s0, 1.0, s1).markovian(s1, 1.0, s0);
        let imc = b.build().unwrap();
        let (p, _) = refine_strong(&imc, Partition::by_label(&imc));
        assert_eq!(p.num_blocks(), 2);
    }

    #[test]
    fn distinguishes_actions() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let c = ab.intern("c");
        let mut b = IoImcBuilder::new();
        b.set_outputs([a, c]);
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        b.interactive(s[0], a, s[2]).interactive(s[1], c, s[2]);
        let imc = b.build().unwrap();
        let (p, _) = refine_strong(&imc, Partition::by_label(&imc));
        assert!(!p.same_block(0, 1));
    }

    #[test]
    fn internal_actions_are_interchangeable() {
        let mut ab = Alphabet::new();
        let t1 = ab.intern("t1");
        let t2 = ab.intern("t2");
        let mut b = IoImcBuilder::new();
        b.set_internals([t1, t2]);
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        b.interactive(s[0], t1, s[2]).interactive(s[1], t2, s[2]);
        let imc = b.build().unwrap();
        let (p, _) = refine_strong(&imc, Partition::by_label(&imc));
        assert!(p.same_block(0, 1));
    }

    #[test]
    fn lumping_sums_parallel_rates() {
        // s0 has two rate-1 edges to equivalent targets; s1 one rate-2 edge.
        // The targets are labeled so the move is observable.
        let mut b = IoImcBuilder::new();
        let s: Vec<_> = (0..4)
            .map(|i| b.add_labeled_state(u64::from(i >= 2)))
            .collect();
        b.markovian(s[0], 1.0, s[2])
            .markovian(s[0], 1.0, s[3])
            .markovian(s[1], 2.0, s[2]);
        let imc = b.build().unwrap();
        let (p, _) = refine_strong(&imc, Partition::by_label(&imc));
        // s2 ~ s3 (both deadlock, same label); then s0 and s1 both move at
        // total rate 2 into that class.
        assert!(p.same_block(2, 3));
        assert!(p.same_block(0, 1));
    }
}
