//! State partitions.

use ioimc::{IoImc, StateId, StateLabel};
use std::collections::HashMap;

/// A partition of the states of an automaton into blocks `0..num_blocks`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    block: Vec<u32>,
    num_blocks: usize,
}

impl Partition {
    /// The trivial partition: all states in block 0.
    pub fn trivial(num_states: usize) -> Self {
        Self {
            block: vec![0; num_states],
            num_blocks: if num_states == 0 { 0 } else { 1 },
        }
    }

    /// The initial partition for label-respecting reduction: one block per
    /// distinct state label.
    pub fn by_label(imc: &IoImc) -> Self {
        let mut ids: HashMap<StateLabel, u32> = HashMap::new();
        let block = imc
            .labels()
            .iter()
            .map(|&l| {
                let next = ids.len() as u32;
                *ids.entry(l).or_insert(next)
            })
            .collect();
        Self {
            block,
            num_blocks: ids.len(),
        }
    }

    /// Builds a partition from explicit block ids (must be dense `0..k`).
    pub fn from_blocks(block: Vec<u32>, num_blocks: usize) -> Self {
        debug_assert!(block.iter().all(|&b| (b as usize) < num_blocks));
        Self { block, num_blocks }
    }

    /// The block of state `s`.
    pub fn block_of(&self, s: StateId) -> u32 {
        self.block[s as usize]
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.block.len()
    }

    /// The block id of every state.
    pub fn blocks(&self) -> &[u32] {
        &self.block
    }

    /// Groups the states of each block: `result[b]` lists the members of
    /// block `b`.
    ///
    /// Allocates one `Vec` per block; hot paths should use
    /// [`Partition::members_csr`] instead, which groups the same
    /// information into two flat arrays with a single counting sort.
    pub fn members(&self) -> Vec<Vec<StateId>> {
        let mut m = vec![Vec::new(); self.num_blocks];
        for (s, &b) in self.block.iter().enumerate() {
            m[b as usize].push(s as StateId);
        }
        m
    }

    /// Groups the members of every block in flat CSR form (counting sort,
    /// two allocations total): `result.of(b)` is the ascending member
    /// slice of block `b`.
    pub fn members_csr(&self) -> BlockMembers {
        let mut offsets = vec![0u32; self.num_blocks + 1];
        for &b in &self.block {
            offsets[b as usize + 1] += 1;
        }
        for i in 0..self.num_blocks {
            offsets[i + 1] += offsets[i];
        }
        let mut states: Vec<StateId> = vec![0; self.block.len()];
        let mut cursor: Vec<u32> = offsets[..self.num_blocks].to_vec();
        for (s, &b) in self.block.iter().enumerate() {
            states[cursor[b as usize] as usize] = s as StateId;
            cursor[b as usize] += 1;
        }
        BlockMembers { offsets, states }
    }

    /// The coarsest partition refining both `self` and the grouping given
    /// by `hint` (an arbitrary per-state group id, not necessarily dense):
    /// two states share a block iff they share a block of `self` *and* a
    /// hint group. Blocks are numbered by first occurrence in ascending
    /// state order, the same canonical numbering the refiners produce.
    ///
    /// # Panics
    ///
    /// Panics if `hint.len()` differs from the number of states.
    pub fn meet(&self, hint: &[u32]) -> Partition {
        assert_eq!(hint.len(), self.block.len(), "hint length mismatch");
        let mut ids: HashMap<(u32, u32), u32> = HashMap::new();
        let block: Vec<u32> = self
            .block
            .iter()
            .zip(hint)
            .map(|(&b, &h)| {
                let next = ids.len() as u32;
                *ids.entry((b, h)).or_insert(next)
            })
            .collect();
        Partition {
            block,
            num_blocks: ids.len(),
        }
    }

    /// Whether two states are in the same block.
    pub fn same_block(&self, a: StateId, b: StateId) -> bool {
        self.block[a as usize] == self.block[b as usize]
    }
}

/// Flat (CSR-style) block membership produced by
/// [`Partition::members_csr`]: member lists of all blocks concatenated,
/// plus per-block offsets.
#[derive(Debug, Clone)]
pub struct BlockMembers {
    offsets: Vec<u32>,
    states: Vec<StateId>,
}

impl BlockMembers {
    /// The members of block `b`, in ascending state order.
    pub fn of(&self, b: usize) -> &[StateId] {
        &self.states[self.offsets[b] as usize..self.offsets[b + 1] as usize]
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.offsets.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioimc::builder::IoImcBuilder;

    #[test]
    fn by_label_separates_labels() {
        let mut b = IoImcBuilder::new();
        b.add_labeled_state(0);
        b.add_labeled_state(1);
        b.add_labeled_state(0);
        let imc = b.build().unwrap();
        let p = Partition::by_label(&imc);
        assert_eq!(p.num_blocks(), 2);
        assert!(p.same_block(0, 2));
        assert!(!p.same_block(0, 1));
        assert_eq!(p.members()[p.block_of(1) as usize], vec![1]);
    }

    #[test]
    fn trivial_is_one_block() {
        let p = Partition::trivial(5);
        assert_eq!(p.num_blocks(), 1);
        assert!(p.same_block(0, 4));
        assert_eq!(p.num_states(), 5);
    }
}
