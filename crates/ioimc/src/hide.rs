//! Hiding and input pruning.
//!
//! Both passes take the automaton **by value** and edit it in place:
//! hiding is a signature-only change (the transition relation is
//! untouched), and input pruning compacts the interactive CSR storage
//! without reallocating. The aggregation engine runs one hide + one prune
//! after *every* composition step, so avoiding the two full deep copies
//! the old `&IoImc -> IoImc` signatures forced is a real win on large
//! intermediates.

use crate::alphabet::ActionId;
use crate::automaton::IoImc;

/// `hide A in P`: turns the output actions in `actions` into internal
/// actions, so that no further synchronization over them is possible.
///
/// Actions in the set that are not outputs of `imc` are ignored (this makes
/// it convenient to hide "everything the remaining modules do not listen
/// to"). The transition relation is unchanged; only the signature moves.
pub fn hide_outputs(mut imc: IoImc, actions: &[ActionId]) -> IoImc {
    let mut hidden: Vec<ActionId> = actions
        .iter()
        .copied()
        .filter(|a| imc.outputs().binary_search(a).is_ok())
        .collect();
    hidden.sort_unstable();
    hidden.dedup();
    if hidden.is_empty() {
        return imc;
    }
    imc.outputs.retain(|a| hidden.binary_search(a).is_err());
    imc.internals.extend(hidden);
    imc.internals.sort_unstable();
    imc.internals.dedup();
    imc
}

/// Removes input actions that can never be driven because no remaining
/// automaton outputs them ("closing" the inputs).
///
/// All transitions labeled with a pruned input are deleted — they can never
/// fire in the closed system — and the actions leave the signature.
pub fn prune_inputs(mut imc: IoImc, actions: &[ActionId]) -> IoImc {
    let mut pruned: Vec<ActionId> = actions
        .iter()
        .copied()
        .filter(|a| imc.inputs().binary_search(a).is_ok())
        .collect();
    pruned.sort_unstable();
    pruned.dedup();
    if pruned.is_empty() {
        return imc;
    }
    imc.inputs.retain(|a| pruned.binary_search(a).is_err());
    imc.retain_interactive(|_, a, _| pruned.binary_search(&a).is_err());
    imc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IoImcBuilder;
    use crate::{ActionKind, Alphabet};

    fn sample(ab: &mut Alphabet) -> (ActionId, ActionId, IoImc) {
        let a = ab.intern("a");
        let b = ab.intern("b");
        let mut bld = IoImcBuilder::new();
        bld.set_inputs([a]).set_outputs([b]);
        let s0 = bld.add_state();
        let s1 = bld.add_state();
        bld.interactive(s0, a, s1).interactive(s1, b, s0);
        (a, b, bld.complete_inputs().build().unwrap())
    }

    #[test]
    fn hide_moves_output_to_internal() {
        let mut ab = Alphabet::new();
        let (_, b, imc) = sample(&mut ab);
        let before = imc.num_transitions();
        let h = hide_outputs(imc, &[b]);
        assert_eq!(h.kind_of(b), Some(ActionKind::Internal));
        assert!(h.outputs().is_empty());
        assert_eq!(h.num_transitions(), before);
    }

    #[test]
    fn hide_ignores_non_outputs() {
        let mut ab = Alphabet::new();
        let (a, _, imc) = sample(&mut ab);
        let h = hide_outputs(imc.clone(), &[a]);
        assert_eq!(h, imc);
    }

    #[test]
    fn prune_removes_input_transitions() {
        let mut ab = Alphabet::new();
        let (a, _, imc) = sample(&mut ab);
        let p = prune_inputs(imc, &[a]);
        assert!(p.inputs().is_empty());
        assert!(p.iter_interactive().all(|(_, act, _)| act != a));
    }
}
