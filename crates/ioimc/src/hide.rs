//! Hiding and input pruning.

use crate::alphabet::ActionId;
use crate::automaton::IoImc;

/// `hide A in P`: turns the output actions in `actions` into internal
/// actions, so that no further synchronization over them is possible.
///
/// Actions in the set that are not outputs of `imc` are ignored (this makes
/// it convenient to hide "everything the remaining modules do not listen
/// to"). The transition relation is unchanged; only the signature moves.
pub fn hide_outputs(imc: &IoImc, actions: &[ActionId]) -> IoImc {
    let mut hidden: Vec<ActionId> = actions
        .iter()
        .copied()
        .filter(|a| imc.outputs().binary_search(a).is_ok())
        .collect();
    hidden.sort_unstable();
    hidden.dedup();
    if hidden.is_empty() {
        return imc.clone();
    }
    let outputs: Vec<ActionId> = imc
        .outputs()
        .iter()
        .copied()
        .filter(|a| hidden.binary_search(a).is_err())
        .collect();
    let mut internals: Vec<ActionId> = imc.internals().iter().copied().chain(hidden).collect();
    internals.sort_unstable();
    internals.dedup();
    IoImc::from_parts_unchecked(
        imc.initial(),
        imc.inputs().to_vec(),
        outputs,
        internals,
        (0..imc.num_states() as u32)
            .map(|s| imc.interactive_from(s).to_vec())
            .collect(),
        (0..imc.num_states() as u32)
            .map(|s| imc.markovian_from(s).to_vec())
            .collect(),
        imc.labels().to_vec(),
    )
}

/// Removes input actions that can never be driven because no remaining
/// automaton outputs them ("closing" the inputs).
///
/// All transitions labeled with a pruned input are deleted — they can never
/// fire in the closed system — and the actions leave the signature.
pub fn prune_inputs(imc: &IoImc, actions: &[ActionId]) -> IoImc {
    let mut pruned: Vec<ActionId> = actions
        .iter()
        .copied()
        .filter(|a| imc.inputs().binary_search(a).is_ok())
        .collect();
    pruned.sort_unstable();
    pruned.dedup();
    if pruned.is_empty() {
        return imc.clone();
    }
    let inputs: Vec<ActionId> = imc
        .inputs()
        .iter()
        .copied()
        .filter(|a| pruned.binary_search(a).is_err())
        .collect();
    let interactive = (0..imc.num_states() as u32)
        .map(|s| {
            imc.interactive_from(s)
                .iter()
                .copied()
                .filter(|(a, _)| pruned.binary_search(a).is_err())
                .collect()
        })
        .collect();
    IoImc::from_parts_unchecked(
        imc.initial(),
        inputs,
        imc.outputs().to_vec(),
        imc.internals().to_vec(),
        interactive,
        (0..imc.num_states() as u32)
            .map(|s| imc.markovian_from(s).to_vec())
            .collect(),
        imc.labels().to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IoImcBuilder;
    use crate::{ActionKind, Alphabet};

    fn sample(ab: &mut Alphabet) -> (ActionId, ActionId, IoImc) {
        let a = ab.intern("a");
        let b = ab.intern("b");
        let mut bld = IoImcBuilder::new();
        bld.set_inputs([a]).set_outputs([b]);
        let s0 = bld.add_state();
        let s1 = bld.add_state();
        bld.interactive(s0, a, s1).interactive(s1, b, s0);
        (a, b, bld.complete_inputs().build().unwrap())
    }

    #[test]
    fn hide_moves_output_to_internal() {
        let mut ab = Alphabet::new();
        let (_, b, imc) = sample(&mut ab);
        let h = hide_outputs(&imc, &[b]);
        assert_eq!(h.kind_of(b), Some(ActionKind::Internal));
        assert!(h.outputs().is_empty());
        assert_eq!(h.num_transitions(), imc.num_transitions());
    }

    #[test]
    fn hide_ignores_non_outputs() {
        let mut ab = Alphabet::new();
        let (a, _, imc) = sample(&mut ab);
        let h = hide_outputs(&imc, &[a]);
        assert_eq!(h, imc);
    }

    #[test]
    fn prune_removes_input_transitions() {
        let mut ab = Alphabet::new();
        let (a, _, imc) = sample(&mut ab);
        let p = prune_inputs(&imc, &[a]);
        assert!(p.inputs().is_empty());
        assert!(p.iter_interactive().all(|(_, act, _)| act != a));
    }
}
