//! Size statistics of I/O-IMCs.

use std::fmt;

use crate::automaton::IoImc;

/// State and transition counts of an I/O-IMC; the quantities the paper
/// reports for the case studies (e.g. "6,522 states and 33,486 transitions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Number of states.
    pub states: usize,
    /// Number of interactive transitions.
    pub interactive: usize,
    /// Number of Markovian transitions.
    pub markovian: usize,
}

impl Stats {
    /// Collects the statistics of `imc`.
    pub fn of(imc: &IoImc) -> Self {
        Self {
            states: imc.num_states(),
            interactive: imc.num_interactive(),
            markovian: imc.num_markovian(),
        }
    }

    /// Total transition count.
    pub fn transitions(&self) -> usize {
        self.interactive + self.markovian
    }

    /// Pointwise maximum (used to track the largest intermediate model).
    pub fn max(self, other: Self) -> Self {
        if other.states > self.states
            || (other.states == self.states && other.transitions() > self.transitions())
        {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions ({} interactive + {} Markovian)",
            self.states,
            self.transitions(),
            self.interactive,
            self.markovian
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IoImcBuilder;
    use crate::Alphabet;

    #[test]
    fn counts_match() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let mut b = IoImcBuilder::new();
        b.set_outputs([a]);
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.interactive(s0, a, s1).markovian(s1, 1.0, s0);
        let imc = b.build().unwrap();
        let st = Stats::of(&imc);
        assert_eq!(
            st,
            Stats {
                states: 2,
                interactive: 1,
                markovian: 1
            }
        );
        assert_eq!(st.transitions(), 2);
        assert!(!st.to_string().is_empty());
    }

    #[test]
    fn max_picks_larger() {
        let a = Stats {
            states: 10,
            interactive: 5,
            markovian: 5,
        };
        let b = Stats {
            states: 12,
            interactive: 1,
            markovian: 1,
        };
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }
}
