//! Size statistics of I/O-IMCs.

use std::fmt;

use crate::automaton::IoImc;

/// State and transition counts of an I/O-IMC; the quantities the paper
/// reports for the case studies (e.g. "6,522 states and 33,486 transitions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Number of states.
    pub states: usize,
    /// Number of interactive transitions.
    pub interactive: usize,
    /// Number of Markovian transitions.
    pub markovian: usize,
}

impl Stats {
    /// Collects the statistics of `imc`.
    pub fn of(imc: &IoImc) -> Self {
        Self {
            states: imc.num_states(),
            interactive: imc.num_interactive(),
            markovian: imc.num_markovian(),
        }
    }

    /// Total transition count.
    pub fn transitions(&self) -> usize {
        self.interactive + self.markovian
    }

    /// Fieldwise (pointwise) maximum, used to track the peak intermediate
    /// sizes: each count is maximized independently, so the result bounds
    /// every intermediate model even when the state peak and the
    /// transition peak occur in different aggregation steps. Commutative
    /// and associative, so parallel step reports can be folded in any
    /// order.
    pub fn max(self, other: Self) -> Self {
        Self {
            states: self.states.max(other.states),
            interactive: self.interactive.max(other.interactive),
            markovian: self.markovian.max(other.markovian),
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions ({} interactive + {} Markovian)",
            self.states,
            self.transitions(),
            self.interactive,
            self.markovian
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IoImcBuilder;
    use crate::Alphabet;

    #[test]
    fn counts_match() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let mut b = IoImcBuilder::new();
        b.set_outputs([a]);
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.interactive(s0, a, s1).markovian(s1, 1.0, s0);
        let imc = b.build().unwrap();
        let st = Stats::of(&imc);
        assert_eq!(
            st,
            Stats {
                states: 2,
                interactive: 1,
                markovian: 1
            }
        );
        assert_eq!(st.transitions(), 2);
        assert!(!st.to_string().is_empty());
    }

    #[test]
    fn max_is_fieldwise() {
        let a = Stats {
            states: 10,
            interactive: 5,
            markovian: 5,
        };
        let b = Stats {
            states: 12,
            interactive: 1,
            markovian: 1,
        };
        // Each field peaks independently: the transition peak of `a` must
        // not be dropped just because `b` has more states.
        let expected = Stats {
            states: 12,
            interactive: 5,
            markovian: 5,
        };
        assert_eq!(a.max(b), expected);
        assert_eq!(b.max(a), expected);
        assert_eq!(a.max(a), a);
    }
}
