//! Reachability restriction.

use crate::automaton::{IoImc, StateId};

/// Restricts `imc` to the states reachable from the initial state and
/// renumbers them in BFS discovery order (the initial state becomes 0).
///
/// Transformation passes such as the maximal-progress cut or input pruning
/// can disconnect parts of the state space; call this afterwards to keep
/// state counts honest.
pub fn restrict_reachable(imc: &IoImc) -> IoImc {
    restrict_reachable_with_map(imc).0
}

/// [`restrict_reachable`], additionally returning the provenance map
/// `old_of[new] = old`: the original id of every surviving state, indexed
/// by its new (BFS-order) id. Passes that carry an initial-partition hint
/// across renumbering pipeline steps compose these maps.
pub fn restrict_reachable_with_map(imc: &IoImc) -> (IoImc, Vec<StateId>) {
    let n = imc.num_states();
    let mut map: Vec<Option<StateId>> = vec![None; n];
    let mut order: Vec<StateId> = Vec::new();
    map[imc.initial() as usize] = Some(0);
    order.push(imc.initial());
    let mut next = 0usize;
    while next < order.len() {
        let s = order[next];
        next += 1;
        for &(_, t) in imc.interactive_from(s) {
            if map[t as usize].is_none() {
                map[t as usize] = Some(order.len() as StateId);
                order.push(t);
            }
        }
        for &(_, t) in imc.markovian_from(s) {
            if map[t as usize].is_none() {
                map[t as usize] = Some(order.len() as StateId);
                order.push(t);
            }
        }
    }
    // Composition products and quotients are typically emitted in BFS
    // order already, making the restriction a renumbering no-op; detect
    // that and clone the CSR arrays instead of remapping every transition.
    // (Normalize still runs — it is what the rebuild path applies on top
    // of the identity remap, and it is cheap on already-normalized input.)
    if order.len() == n && order.iter().enumerate().all(|(i, &s)| i as StateId == s) {
        let mut out = imc.clone();
        out.normalize();
        return (out, order);
    }
    // Emit the renumbered transitions straight into CSR form: the states
    // are visited in their new order, so each state's slice is contiguous.
    let remap = |t: StateId| map[t as usize].expect("target of reachable state is reachable");
    let mut inter_off: Vec<u32> = Vec::with_capacity(order.len() + 1);
    let mut mark_off: Vec<u32> = Vec::with_capacity(order.len() + 1);
    let mut inter: Vec<(crate::ActionId, StateId)> = Vec::new();
    let mut mark: Vec<(f64, StateId)> = Vec::new();
    let mut forms: Vec<crate::form::RateForm> = Vec::new();
    inter_off.push(0);
    mark_off.push(0);
    for &s in &order {
        inter.extend(imc.interactive_from(s).iter().map(|&(a, t)| (a, remap(t))));
        mark.extend(imc.markovian_from(s).iter().map(|&(r, t)| (r, remap(t))));
        if let Some(f) = imc.markovian_forms_from(s) {
            forms.extend_from_slice(f);
        }
        inter_off.push(u32::try_from(inter.len()).expect("more than u32::MAX transitions"));
        mark_off.push(u32::try_from(mark.len()).expect("more than u32::MAX transitions"));
    }
    let labels = order.iter().map(|&s| imc.label(s)).collect();
    let mut out = IoImc::from_csr_unchecked(
        0,
        imc.inputs().to_vec(),
        imc.outputs().to_vec(),
        imc.internals().to_vec(),
        inter_off,
        inter,
        mark_off,
        mark,
        labels,
    );
    if imc.forms().is_some() {
        out.attach_forms(forms);
    }
    out.normalize();
    (out, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IoImcBuilder;
    use crate::Alphabet;

    #[test]
    fn drops_unreachable_states() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let mut bld = IoImcBuilder::new();
        bld.set_outputs([a]);
        let s0 = bld.add_state();
        let s1 = bld.add_state();
        let s2 = bld.add_labeled_state(7); // unreachable
        bld.interactive(s0, a, s1).markovian(s2, 1.0, s0);
        let imc = bld.build().unwrap();
        let r = restrict_reachable(&imc);
        assert_eq!(r.num_states(), 2);
        assert_eq!(r.initial(), 0);
        assert!(r.labels().iter().all(|&l| l != 7));
    }

    #[test]
    fn identity_on_fully_reachable() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let mut bld = IoImcBuilder::new();
        bld.set_outputs([a]);
        let s0 = bld.add_state();
        let s1 = bld.add_state();
        bld.interactive(s0, a, s1).markovian(s1, 1.0, s0);
        let imc = bld.build().unwrap();
        let r = restrict_reachable(&imc);
        assert_eq!(r, imc);
    }
}
