//! Cooperative compute budgets and cancellation.
//!
//! The workspace is dependency-free, so this module provides the one
//! fault-containment primitive the whole stack shares: a [`Budget`]
//! bundling an optional wall-clock **deadline**, an optional **model-size
//! ceiling** (states/transitions of any intermediate automaton), and a
//! **cancellation flag**. Budgets are *cooperative*: long-running kernels
//! poll [`Budget::check`] (or the ambient [`checkpoint`]) at safe
//! boundaries — composition BFS chunks, refinement rounds, uniformization
//! segments and sweeps, Gauss–Seidel/Krylov sweeps — and abort with a
//! structured [`BudgetExceeded`] instead of wedging their thread.
//!
//! # Ambient propagation
//!
//! Threading an explicit parameter through every solver entry point would
//! churn dozens of stable signatures, so the budget travels as an ambient
//! thread-local installed with [`scope`]. Kernels read it with [`current`]
//! / [`checkpoint`]. The thread-local does **not** cross thread spawns:
//! fork/join fan-outs that must stay budgeted re-install the scope inside
//! their worker closures (the aggregation engine and the query layer do).
//! Kernels whose workers rendezvous on barriers only poll on the
//! coordinating thread, so an abort can never strand a worker mid-barrier.
//!
//! # Abort discipline
//!
//! Result-returning layers (composition, the aggregation engine) surface
//! the abort as an error value. Deep solver loops whose signatures return
//! plain vectors abort by panicking with a [`BudgetExceeded`] payload
//! (`std::panic::panic_any`); the evaluation boundary catches the unwind
//! and re-classifies it. Because scoped-thread joins may replace a panic
//! payload with a generic message, every trip is *also* recorded on the
//! budget itself ([`Budget::tripped`]) — classification never depends on
//! the payload surviving the unwind.
//!
//! Checks are cheap: a relaxed atomic load for cancellation, one
//! `Instant::now()` for the deadline, two integer compares for the size
//! ceiling. Kernels gate the deadline poll to once per O(thousands) of
//! inner-loop iterations.

use std::cell::RefCell;
use std::fmt;
use std::panic::panic_any;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which limit a computation ran into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// The wall-clock deadline passed.
    Deadline,
    /// An intermediate model exceeded the state ceiling.
    States,
    /// An intermediate model exceeded the transition ceiling.
    Transitions,
    /// The budget was cancelled explicitly.
    Cancelled,
}

impl BudgetKind {
    /// Stable lowercase name (`"deadline"`, `"states"`, `"transitions"`,
    /// `"cancelled"`) — the serve layer keys wire error codes off this.
    pub fn name(self) -> &'static str {
        match self {
            Self::Deadline => "deadline",
            Self::States => "states",
            Self::Transitions => "transitions",
            Self::Cancelled => "cancelled",
        }
    }
}

/// A structured budget violation: which limit, what the limit was, and
/// what was observed. For [`BudgetKind::Deadline`] both values are
/// milliseconds; for the size kinds they are counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BudgetExceeded {
    /// The limit that tripped.
    pub kind: BudgetKind,
    /// The configured limit (ms or count; 0 for [`BudgetKind::Cancelled`]).
    pub limit: u64,
    /// The observed value when the trip was detected.
    pub actual: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            BudgetKind::Deadline => write!(
                f,
                "deadline exceeded: {} ms elapsed of a {} ms budget",
                self.actual, self.limit
            ),
            BudgetKind::States => write!(
                f,
                "model too large: {} states exceeds the {}-state ceiling",
                self.actual, self.limit
            ),
            BudgetKind::Transitions => write!(
                f,
                "model too large: {} transitions exceeds the {}-transition ceiling",
                self.actual, self.limit
            ),
            BudgetKind::Cancelled => write!(f, "evaluation cancelled"),
        }
    }
}

impl std::error::Error for BudgetExceeded {}

/// Packed `tripped` states (first trip wins, recorded with a CAS).
const TRIP_NONE: u8 = 0;

fn kind_to_u8(k: BudgetKind) -> u8 {
    match k {
        BudgetKind::Deadline => 1,
        BudgetKind::States => 2,
        BudgetKind::Transitions => 3,
        BudgetKind::Cancelled => 4,
    }
}

fn kind_from_u8(v: u8) -> Option<BudgetKind> {
    match v {
        1 => Some(BudgetKind::Deadline),
        2 => Some(BudgetKind::States),
        3 => Some(BudgetKind::Transitions),
        4 => Some(BudgetKind::Cancelled),
        _ => None,
    }
}

/// A cooperative compute budget (deadline + model-size ceiling +
/// cancellation flag). See the module docs for the polling contract.
///
/// Budgets can be **chained**: a child created with
/// [`Budget::with_parent`] also honors (and reports trips to) its parent,
/// so a per-call size ceiling can be layered under a per-request deadline
/// without merging the two objects.
#[derive(Debug, Default)]
pub struct Budget {
    /// Absolute deadline, if any.
    deadline: Option<Instant>,
    /// The instant the deadline was armed (for error messages).
    armed: Option<Instant>,
    /// Original deadline duration in ms (for error messages).
    deadline_ms: u64,
    /// Intermediate-model state ceiling; `0` = unlimited.
    max_states: u64,
    /// Intermediate-model transition ceiling; `0` = unlimited.
    max_transitions: u64,
    cancelled: AtomicBool,
    tripped: AtomicU8,
    parent: Option<Arc<Budget>>,
}

impl Budget {
    /// A budget with no limits (every check passes).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Returns a copy with a wall-clock deadline `d` from now.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        let now = Instant::now();
        self.armed = Some(now);
        self.deadline = Some(now + d);
        self.deadline_ms = d.as_millis().min(u128::from(u64::MAX)) as u64;
        self
    }

    /// Returns a copy with an intermediate-model state ceiling (`0`
    /// disables the ceiling).
    pub fn with_max_states(mut self, max_states: u64) -> Self {
        self.max_states = max_states;
        self
    }

    /// Returns a copy with an intermediate-model transition ceiling (`0`
    /// disables the ceiling).
    pub fn with_max_transitions(mut self, max_transitions: u64) -> Self {
        self.max_transitions = max_transitions;
        self
    }

    /// Returns a copy chained under `parent`: checks consult the parent
    /// too, and trips are recorded on both.
    pub fn with_parent(mut self, parent: Arc<Budget>) -> Self {
        self.parent = Some(parent);
        self
    }

    /// Whether any limit is armed (directly or via a parent). Kernels may
    /// skip polling entirely when this is `false`.
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some()
            || self.max_states > 0
            || self.max_transitions > 0
            || self.cancelled.load(Ordering::Relaxed)
            || self.parent.as_ref().is_some_and(|p| p.is_limited())
    }

    /// Flags the budget as cancelled; the next check fails.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Checks cancellation and the deadline. On failure the trip is
    /// recorded (first trip wins) and returned.
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(self.trip(BudgetExceeded {
                kind: BudgetKind::Cancelled,
                limit: 0,
                actual: 0,
            }));
        }
        if let Some(deadline) = self.deadline {
            let now = Instant::now();
            if now >= deadline {
                let elapsed = self
                    .armed
                    .map_or(0, |a| now.duration_since(a).as_millis() as u64);
                return Err(self.trip(BudgetExceeded {
                    kind: BudgetKind::Deadline,
                    limit: self.deadline_ms,
                    actual: elapsed,
                }));
            }
        }
        if let Some(p) = &self.parent {
            p.check()?;
        }
        Ok(())
    }

    /// [`Budget::check`] plus the intermediate-model size ceiling.
    pub fn check_size(&self, states: u64, transitions: u64) -> Result<(), BudgetExceeded> {
        if self.max_states > 0 && states > self.max_states {
            return Err(self.trip(BudgetExceeded {
                kind: BudgetKind::States,
                limit: self.max_states,
                actual: states,
            }));
        }
        if self.max_transitions > 0 && transitions > self.max_transitions {
            return Err(self.trip(BudgetExceeded {
                kind: BudgetKind::Transitions,
                limit: self.max_transitions,
                actual: transitions,
            }));
        }
        if let Some(p) = &self.parent {
            p.check_size(states, transitions)?;
        }
        self.check()
    }

    /// Records `e` as this budget's trip (first trip wins, propagated to
    /// the parent chain) and returns `e` for the caller to report.
    fn trip(&self, e: BudgetExceeded) -> BudgetExceeded {
        let _ = self.tripped.compare_exchange(
            TRIP_NONE,
            kind_to_u8(e.kind),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        if let Some(p) = &self.parent {
            p.trip(e);
        }
        e
    }

    /// The first recorded budget violation, if any. Only the kind is
    /// preserved exactly; limit/actual are reconstructed best-effort (the
    /// serve layer reports the kind and a human message, both stable).
    pub fn tripped(&self) -> Option<BudgetExceeded> {
        let kind = kind_from_u8(self.tripped.load(Ordering::Relaxed))?;
        let (limit, actual) = match kind {
            BudgetKind::Deadline => (
                self.deadline_ms,
                self.armed.map_or(0, |a| a.elapsed().as_millis() as u64),
            ),
            BudgetKind::States => (self.max_states, 0),
            BudgetKind::Transitions => (self.max_transitions, 0),
            BudgetKind::Cancelled => (0, 0),
        };
        Some(BudgetExceeded {
            kind,
            limit,
            actual,
        })
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<Arc<Budget>>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard restoring the previous ambient budget, panic-safe.
struct ScopeGuard {
    pushed: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.pushed {
            CURRENT.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
}

/// Runs `f` with `budget` installed as the ambient budget of this thread
/// (restored on exit, including unwinds). `None` is a no-op wrapper, so
/// fan-out sites can uniformly write
/// `scope(current(), || ...)` inside worker closures.
pub fn scope<R>(budget: Option<Arc<Budget>>, f: impl FnOnce() -> R) -> R {
    let guard = match budget {
        Some(b) => {
            CURRENT.with(|c| c.borrow_mut().push(b));
            ScopeGuard { pushed: true }
        }
        None => ScopeGuard { pushed: false },
    };
    let out = f();
    drop(guard);
    out
}

/// The ambient budget of this thread, if one is installed.
pub fn current() -> Option<Arc<Budget>> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// Polls the ambient budget's cancellation/deadline; **panics** with a
/// [`BudgetExceeded`] payload on violation (after recording the trip on
/// the budget). No-op without an ambient budget. Only call from loops
/// whose unwind path cannot strand barrier-synced workers.
pub fn checkpoint() {
    if let Some(b) = current() {
        if let Err(e) = b.check() {
            panic_any(e);
        }
    }
}

/// Checks the given intermediate-model size against the ambient budget
/// (plus cancellation/deadline), returning the violation as a value.
pub fn check_model_size(states: u64, transitions: u64) -> Result<(), BudgetExceeded> {
    match current() {
        Some(b) => b.check_size(states, transitions),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let b = Budget::unlimited();
        assert!(!b.is_limited());
        assert!(b.check().is_ok());
        assert!(b.check_size(u64::MAX, u64::MAX).is_ok());
        assert_eq!(b.tripped(), None);
    }

    #[test]
    fn cancellation_trips_and_is_recorded() {
        let b = Budget::unlimited();
        b.cancel();
        let e = b.check().unwrap_err();
        assert_eq!(e.kind, BudgetKind::Cancelled);
        assert_eq!(b.tripped().unwrap().kind, BudgetKind::Cancelled);
    }

    #[test]
    fn expired_deadline_trips() {
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        let e = b.check().unwrap_err();
        assert_eq!(e.kind, BudgetKind::Deadline);
        assert!(e.actual >= 1, "elapsed ms recorded: {e}");
    }

    #[test]
    fn size_ceiling_trips_on_the_right_axis() {
        let b = Budget::unlimited()
            .with_max_states(10)
            .with_max_transitions(100);
        assert!(b.check_size(10, 100).is_ok());
        assert_eq!(b.check_size(11, 0).unwrap_err().kind, BudgetKind::States);
        let e = b.check_size(5, 101).unwrap_err();
        assert_eq!(e.kind, BudgetKind::Transitions);
        assert_eq!((e.limit, e.actual), (100, 101));
        // First trip wins.
        assert_eq!(b.tripped().unwrap().kind, BudgetKind::States);
    }

    #[test]
    fn child_trip_propagates_to_parent() {
        let parent = Arc::new(Budget::unlimited());
        let child = Budget::unlimited()
            .with_max_states(1)
            .with_parent(parent.clone());
        assert!(child.check_size(2, 0).is_err());
        assert_eq!(parent.tripped().unwrap().kind, BudgetKind::States);
    }

    #[test]
    fn parent_deadline_is_honored_by_child() {
        let parent = Arc::new(Budget::unlimited().with_deadline(Duration::ZERO));
        let child = Budget::unlimited().with_parent(parent);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(child.check().unwrap_err().kind, BudgetKind::Deadline);
    }

    #[test]
    fn scope_installs_and_restores() {
        assert!(current().is_none());
        let b = Arc::new(Budget::unlimited().with_max_states(7));
        scope(Some(b.clone()), || {
            let cur = current().expect("scope installs");
            assert!(Arc::ptr_eq(&cur, &b));
            // Nested scopes shadow and restore.
            let inner = Arc::new(Budget::unlimited());
            scope(Some(inner.clone()), || {
                assert!(Arc::ptr_eq(&current().unwrap(), &inner));
            });
            assert!(Arc::ptr_eq(&current().unwrap(), &b));
        });
        assert!(current().is_none());
    }

    #[test]
    fn scope_restores_across_unwinds() {
        let b = Arc::new(Budget::unlimited());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scope(Some(b.clone()), || panic!("boom"))
        }));
        assert!(r.is_err());
        assert!(current().is_none(), "guard popped on unwind");
    }

    #[test]
    fn checkpoint_panics_with_typed_payload() {
        let b = Arc::new(Budget::unlimited());
        b.cancel();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scope(Some(b.clone()), checkpoint)
        }));
        let payload = r.unwrap_err();
        let e = payload
            .downcast_ref::<BudgetExceeded>()
            .expect("typed payload");
        assert_eq!(e.kind, BudgetKind::Cancelled);
        assert_eq!(b.tripped().unwrap().kind, BudgetKind::Cancelled);
    }

    #[test]
    fn ambient_model_size_check() {
        assert!(check_model_size(u64::MAX, u64::MAX).is_ok(), "no budget");
        let b = Arc::new(Budget::unlimited().with_max_states(3));
        scope(Some(b), || {
            assert!(check_model_size(3, 0).is_ok());
            assert_eq!(check_model_size(4, 0).unwrap_err().kind, BudgetKind::States);
        });
    }
}
