//! Minimal scoped-thread fork/join helpers.
//!
//! The workspace is deliberately dependency-free, so instead of rayon this
//! module provides the one primitive the pipeline needs: run a function
//! over a slice on a bounded pool of `std::thread::scope` workers and
//! collect the results **in input order**. Work is handed out through an
//! atomic cursor, so long items do not starve the other workers.
//!
//! Everything the aggregation stack parallelizes with this — sibling plan
//! groups, independent modules, independent model configurations,
//! per-state bisimulation signatures — computes each item with exactly
//! the same code the sequential path runs, so results (and therefore all
//! measures) are bitwise identical regardless of the thread count; only
//! the wall clock changes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a user-facing thread-count knob: `0` means one worker per
/// available core; any other request is **clamped to the core count** —
/// oversubscribed workers are strictly slower than the serial path for
/// the lockstep (barrier-synced) kernels this module feeds, because a
/// descheduled worker stalls the whole gang at every step. Results never
/// depend on the worker count, so the clamp is a pure scheduling change.
pub fn effective_threads(threads: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if threads == 0 {
        cores
    } else {
        threads.min(cores)
    }
}

/// Splits a thread budget across `jobs` concurrent workers: each worker
/// gets an equal share (at least 1) for its own nested parallelism, so a
/// dominant job still uses multiple cores without the fan-out
/// oversubscribing the machine.
pub fn split_budget(threads: usize, jobs: usize) -> usize {
    (threads / jobs.max(1)).max(1)
}

/// Applies `f` to every item of `items` on at most `threads` scoped worker
/// threads and returns the results in input order.
///
/// With `threads <= 1` (or fewer than two items) everything runs inline on
/// the caller's thread — the sequential reference path.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn par_map<T: Sync, U: Send>(
    threads: usize,
    items: &[T],
    f: impl Fn(usize, &T) -> U + Sync,
) -> Vec<U> {
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(i, &items[i]);
                *slots[i].lock().expect("no poisoned result slot") = Some(v);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("no poisoned result slot")
                .expect("every index was claimed by a worker")
        })
        .collect()
}

/// Runs `f(worker_index)` for every index in `0..workers` concurrently on
/// scoped threads; worker `0` runs on the caller's thread. Unlike
/// [`par_map`] this hands out *identities*, not items — it is the
/// primitive for gang-style kernels (e.g. the sharded uniformization
/// step in `ctmc::transient`) where long-lived workers coordinate through
/// shared state and barriers instead of consuming a work list.
///
/// With `workers <= 1` the closure runs inline on the caller's thread.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn run_workers(workers: usize, f: impl Fn(usize) + Sync) {
    if workers <= 1 {
        f(0);
        return;
    }
    std::thread::scope(|s| {
        for w in 1..workers {
            let f = &f;
            s.spawn(move || f(w));
        }
        f(0);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(4, &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        let items: Vec<u64> = (0..17).collect();
        let seq = par_map(1, &items, |_, &x| x * x);
        let par = par_map(8, &items, |_, &x| x * x);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn effective_threads_resolves_auto_and_clamps() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(effective_threads(0), cores);
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(3), 3.min(cores));
        // Oversubscription requests collapse to the core count.
        assert_eq!(effective_threads(cores + 100), cores);
    }

    #[test]
    fn run_workers_runs_every_identity_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        for workers in [1usize, 2, 4, 7] {
            let seen: Vec<AtomicU32> = (0..workers).map(|_| AtomicU32::new(0)).collect();
            run_workers(workers, |w| {
                seen[w].fetch_add(1, Ordering::Relaxed);
            });
            for (w, s) in seen.iter().enumerate() {
                assert_eq!(s.load(Ordering::Relaxed), 1, "worker {w} of {workers}");
            }
        }
    }
}
