//! Interned action names.
//!
//! All automata of one model share a single [`Alphabet`] so that action
//! identity (used for synchronization in parallel composition) is a cheap
//! integer comparison.

use std::collections::HashMap;
use std::fmt;

/// Identifier of an action interned in an [`Alphabet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActionId(pub u32);

impl ActionId {
    /// The raw index of the action.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An interner mapping action names to dense [`ActionId`]s and back.
///
/// # Example
///
/// ```
/// use ioimc::Alphabet;
/// let mut ab = Alphabet::new();
/// let a = ab.intern("pp.failed");
/// assert_eq!(ab.intern("pp.failed"), a);
/// assert_eq!(ab.name(a), "pp.failed");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Alphabet {
    names: Vec<String>,
    index: HashMap<String, ActionId>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing id if already interned).
    pub fn intern(&mut self, name: &str) -> ActionId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id =
            ActionId(u32::try_from(self.names.len()).expect("more than u32::MAX actions interned"));
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned action by name.
    pub fn lookup(&self, name: &str) -> Option<ActionId> {
        self.index.get(name).copied()
    }

    /// Returns the name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this alphabet.
    pub fn name(&self, id: ActionId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned actions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no action has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (ActionId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (ActionId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        assert_ne!(a, b);
        assert_eq!(ab.intern("a"), a);
        assert_eq!(ab.len(), 2);
    }

    #[test]
    fn name_round_trips() {
        let mut ab = Alphabet::new();
        let id = ab.intern("x.failed.m1");
        assert_eq!(ab.name(id), "x.failed.m1");
        assert_eq!(ab.lookup("x.failed.m1"), Some(id));
        assert_eq!(ab.lookup("nope"), None);
    }

    #[test]
    fn iter_preserves_order() {
        let mut ab = Alphabet::new();
        ab.intern("a");
        ab.intern("b");
        let names: Vec<_> = ab.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(!ab.is_empty());
    }
}
