//! Collapsing cycles of internal transitions.
//!
//! States on a cycle of internal (tau) transitions are weakly bisimilar:
//! each can silently reach every other in zero time. Collapsing these
//! strongly-connected components first makes the inert-tau graph acyclic,
//! which the signature-refinement algorithm in the `bisim` crate relies on,
//! and removes divergence (tau self-loops disappear).

use crate::automaton::{IoImc, StateId};

/// Computes the SCCs of the graph restricted to internal-action transitions
/// (iterative Tarjan) and merges each SCC into a single state.
///
/// Transitions are re-targeted to SCC representatives; internal self-loops
/// created by the merge disappear (they are inert), and Markovian
/// self-loops are cancelled by normalization. Divergence is treated
/// *insensitively*, as in branching bisimulation: a state on a tau cycle
/// is equivalent to the same state without the cycle, so cross-SCC
/// Markovian transitions survive the merge. The result is normalized; when
/// anything merges it is also reachability-restricted (when nothing merges
/// the input comes back unchanged — callers restrict beforehand).
pub fn collapse_tau_sccs(imc: &IoImc) -> IoImc {
    collapse_tau_sccs_with_map(imc).0
}

/// [`collapse_tau_sccs`], additionally returning the provenance map
/// `old_of[new] = old`: for every state of the result, the *smallest*
/// original state id of the merged SCC it represents. Since all states of
/// a tau SCC are weakly bisimilar, any member is an equally valid
/// representative for carrying an initial-partition hint; picking the
/// minimum keeps the map deterministic. The internal reachability
/// restriction at the end is composed into the map.
pub fn collapse_tau_sccs_with_map(imc: &IoImc) -> (IoImc, Vec<StateId>) {
    let n = imc.num_states();
    // Tau adjacency in flat CSR form (counting pass + fill pass).
    let is_tau = |a| imc.internals().binary_search(&a).is_ok();
    let mut tau_off: Vec<u32> = vec![0; n + 1];
    for s in 0..n as u32 {
        let taus = imc.interactive_from(s).iter().filter(|&&(a, _)| is_tau(a));
        tau_off[s as usize + 1] = tau_off[s as usize] + taus.count() as u32;
    }
    let mut tau_next: Vec<StateId> = vec![0; tau_off[n] as usize];
    let mut tau_self_loop = false;
    {
        let mut cursor: Vec<u32> = tau_off[..n].to_vec();
        for s in 0..n as u32 {
            for &(a, t) in imc.interactive_from(s) {
                if is_tau(a) {
                    tau_self_loop |= t == s;
                    tau_next[cursor[s as usize] as usize] = t;
                    cursor[s as usize] += 1;
                }
            }
        }
    }

    let comp = tarjan(n, &tau_off, &tau_next);
    let num_comp = comp.iter().copied().max().map_or(0, |m| m + 1) as usize;

    // Every SCC a singleton and no divergent self-loop: nothing merges and
    // nothing is dropped, so the collapse is a renumbering of an automaton
    // the caller will renumber again anyway. Skip both rebuilds (the
    // component permutation and the internal reachability restriction) and
    // hand back the input; normalize mirrors what the rebuild path applies
    // and is cheap on already-normalized input.
    if num_comp == n && !tau_self_loop {
        let mut out = imc.clone();
        out.normalize();
        return (out, (0..n as StateId).collect());
    }

    let mut interactive: Vec<Vec<(crate::ActionId, StateId)>> = vec![Vec::new(); num_comp];
    let mut markovian: Vec<Vec<(f64, StateId)>> = vec![Vec::new(); num_comp];
    let mut form_rows: Vec<Vec<crate::form::RateForm>> = if imc.forms().is_some() {
        vec![Vec::new(); num_comp]
    } else {
        Vec::new()
    };
    let mut labels: Vec<u64> = vec![0; num_comp];
    for s in 0..n as u32 {
        let c = comp[s as usize];
        labels[c as usize] |= imc.label(s);
        for &(a, t) in imc.interactive_from(s) {
            let tc = comp[t as usize];
            let is_tau = imc.internals().binary_search(&a).is_ok();
            if is_tau && tc == c {
                continue; // inert within the merged component
            }
            interactive[c as usize].push((a, tc));
        }
        for &(r, t) in imc.markovian_from(s) {
            markovian[c as usize].push((r, comp[t as usize]));
        }
        if let Some(f) = imc.markovian_forms_from(s) {
            form_rows[c as usize].extend_from_slice(f);
        }
    }

    let mut out = IoImc::from_parts_unchecked(
        comp[imc.initial() as usize],
        imc.inputs().to_vec(),
        imc.outputs().to_vec(),
        imc.internals().to_vec(),
        interactive,
        markovian,
        labels,
    );
    if imc.forms().is_some() {
        out.attach_forms(form_rows.into_iter().flatten().collect());
    }
    out.normalize();
    // Smallest original member of each component (ascending scan: the
    // first state hitting a component is its minimum).
    let mut rep: Vec<StateId> = vec![StateId::MAX; num_comp];
    for (s, &c) in comp.iter().enumerate().take(n) {
        if rep[c as usize] == StateId::MAX {
            rep[c as usize] = s as StateId;
        }
    }
    let (restricted, comp_of) = crate::reach::restrict_reachable_with_map(&out);
    let old_of = comp_of.iter().map(|&c| rep[c as usize]).collect();
    (restricted, old_of)
}

/// Iterative Tarjan SCC over a CSR adjacency (`next[next_off[v]..next_off[v+1]]`
/// are `v`'s successors); returns the component id of each node, numbered so
/// that every edge goes from a higher or equal component id to a lower one
/// (reverse topological order of discovery).
fn tarjan(n: usize, next_off: &[u32], next: &[StateId]) -> Vec<StateId> {
    let succ = |v: u32| &next[next_off[v as usize] as usize..next_off[v as usize + 1] as usize];
    const UNSEEN: u32 = u32::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut comp = vec![UNSEEN; n];
    let mut counter = 0u32;
    let mut num_comp = 0u32;

    // frame: (node, next child index)
    let mut call: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNSEEN {
            continue;
        }
        call.push((root, 0));
        index[root as usize] = counter;
        low[root as usize] = counter;
        counter += 1;
        stack.push(root);
        on_stack[root as usize] = true;
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci < succ(v).len() {
                let w = succ(v)[*ci];
                *ci += 1;
                if index[w as usize] == UNSEEN {
                    index[w as usize] = counter;
                    low[w as usize] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = num_comp;
                        if w == v {
                            break;
                        }
                    }
                    num_comp += 1;
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IoImcBuilder;
    use crate::Alphabet;

    #[test]
    fn collapses_tau_cycle() {
        let mut ab = Alphabet::new();
        let tau = ab.intern("tau");
        let out = ab.intern("done");
        let mut b = IoImcBuilder::new();
        b.set_internals([tau]).set_outputs([out]);
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        b.interactive(s0, tau, s1)
            .interactive(s1, tau, s0)
            .interactive(s1, out, s2);
        let imc = b.build().unwrap();
        let c = collapse_tau_sccs(&imc);
        assert_eq!(c.num_states(), 2);
        // the remaining transition is done!
        assert_eq!(c.num_interactive(), 1);
    }

    #[test]
    fn tau_self_loop_removed_rate_survives() {
        let mut ab = Alphabet::new();
        let tau = ab.intern("tau");
        let mut b = IoImcBuilder::new();
        b.set_internals([tau]);
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.interactive(s0, tau, s0) // divergence, treated insensitively
            .markovian(s0, 5.0, s1);
        let imc = b.build().unwrap();
        let c = collapse_tau_sccs(&imc);
        assert_eq!(c.num_states(), 2);
        assert_eq!(c.num_interactive(), 0);
        assert_eq!(c.num_markovian(), 1);
    }

    #[test]
    fn keeps_acyclic_taus() {
        let mut ab = Alphabet::new();
        let tau = ab.intern("tau");
        let mut b = IoImcBuilder::new();
        b.set_internals([tau]);
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.interactive(s0, tau, s1);
        let imc = b.build().unwrap();
        let c = collapse_tau_sccs(&imc);
        assert_eq!(c.num_states(), 2);
        assert_eq!(c.num_interactive(), 1);
    }

    #[test]
    fn merges_labels() {
        let mut ab = Alphabet::new();
        let tau = ab.intern("tau");
        let mut b = IoImcBuilder::new();
        b.set_internals([tau]);
        let s0 = b.add_labeled_state(0b01);
        let s1 = b.add_labeled_state(0b10);
        b.interactive(s0, tau, s1).interactive(s1, tau, s0);
        let imc = b.build().unwrap();
        let c = collapse_tau_sccs(&imc);
        assert_eq!(c.num_states(), 1);
        assert_eq!(c.label(0), 0b11);
    }
}
