//! Ambient failpoint hook for crates below the chaos registry.
//!
//! The fault-injection registry (`arcade::chaos`) lives above this crate
//! in the dependency graph, but some of the boundaries worth faulting —
//! the solver-shard partition in `ctmc::transient`, fan-out points inside
//! the aggregation pipeline — live *below* it. This module closes the
//! loop the same way [`crate::budget`] does for cooperative cancellation:
//! lower crates call [`hit`] at their boundaries, and the registry
//! installs a process-wide hook ([`install`]) plus an armed flag
//! ([`set_armed`]) when faults are requested.
//!
//! Disarmed — the production default — a [`hit`] costs **one relaxed
//! atomic load** and returns immediately; the hook function is not even
//! read. Armed, the hook decides what (if anything) happens at the named
//! point; it may panic (the registry's `panic` action unwinds from inside
//! the hook) or sleep, exactly like a budget checkpoint tripping.
//!
//! The hook is installed at most once per process ([`std::sync::OnceLock`])
//! and is intentionally a plain `fn` pointer: no state is captured, the
//! registry keeps its own state behind the pointer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The hook signature: called with the failpoint name on every armed hit.
pub type Hook = fn(&str);

static ARMED: AtomicBool = AtomicBool::new(false);
static HOOK: OnceLock<Hook> = OnceLock::new();

/// Installs the process-wide failpoint hook. The first call wins; later
/// calls (e.g. re-arming the same registry) are no-ops, which is the
/// desired idempotence — the registry behind the pointer re-reads its own
/// state on every hit.
pub fn install(hook: Hook) {
    let _ = HOOK.set(hook);
}

/// Arms or disarms the fast-path flag. While disarmed, [`hit`] is one
/// relaxed atomic load; the installed hook stays in place for the next
/// arming.
pub fn set_armed(armed: bool) {
    ARMED.store(armed, Ordering::Relaxed);
}

/// Whether hits currently reach the installed hook.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// The failpoint checkpoint: call at a boundary worth faulting. Disarmed
/// (or with no hook installed) this is one relaxed load and nothing else;
/// armed, the installed hook runs and may panic or sleep in place.
#[inline]
pub fn hit(point: &str) {
    if ARMED.load(Ordering::Relaxed) {
        if let Some(hook) = HOOK.get() {
            hook(point);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_hits_are_inert_even_with_a_hook() {
        // Note: the hook registry is process-global, so this test only
        // asserts behavior that holds regardless of installation order
        // with other tests in this binary.
        set_armed(false);
        hit("any.point"); // must not panic or block
        assert!(!armed());
    }
}
