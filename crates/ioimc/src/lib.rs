//! Input/Output Interactive Markov Chains (I/O-IMCs).
//!
//! This crate implements the semantic substrate of the Arcade dependability
//! framework (Boudali et al., DSN 2008): I/O-IMCs are labeled transition
//! systems that combine
//!
//! * **interactive transitions** labeled with *input* (`a?`), *output*
//!   (`a!`) or *internal* (`a;`) actions, and
//! * **Markovian transitions** labeled with rates `λ` of exponential delays.
//!
//! Key operations provided here:
//!
//! * [`compose::parallel`] — the parallel composition operator `||` with
//!   input/output synchronization (outputs broadcast to all inputs),
//! * [`hide`] — turning output actions into internal ones once no further
//!   synchronization over them is needed,
//! * [`mp::maximal_progress_cut`] — removal of Markovian transitions from
//!   states with urgent (output/internal) transitions enabled,
//! * [`reach::restrict_reachable`] — reachability restriction,
//! * [`scc::collapse_tau_sccs`] — collapsing cycles of internal transitions,
//! * [`dot`] — Graphviz export for inspection.
//!
//! States are identified by [`StateId`], actions by [`ActionId`] interned in
//! an [`Alphabet`]. Every I/O-IMC carries its *action signature* (disjoint
//! input/output/internal sets) and is **input-enabled**: every state has at
//! least one transition for every input action (validated at build time; the
//! [`builder::IoImcBuilder::complete_inputs`] helper adds the self-loops the
//! paper elides "for readability").
//!
//! # Example
//!
//! Build the I/O-IMC of Fig. 1 of the paper and compose it with a trivial
//! environment that outputs `a`:
//!
//! ```
//! use ioimc::{Alphabet, builder::IoImcBuilder, compose::parallel};
//!
//! let mut ab = Alphabet::new();
//! let a = ab.intern("a");
//! let b = ab.intern("b");
//!
//! // Fig. 1: S1 -λ-> S2, S1 -a?-> S3 -µ-> S4 -b!-> S5
//! let mut fig1 = IoImcBuilder::new();
//! fig1.set_inputs([a]).set_outputs([b]);
//! let s: Vec<_> = (0..5).map(|_| fig1.add_state()).collect();
//! fig1.markovian(s[0], 1.0, s[1])
//!     .interactive(s[0], a, s[2])
//!     .markovian(s[2], 2.0, s[3])
//!     .interactive(s[3], b, s[4]);
//! let fig1 = fig1.complete_inputs().build().unwrap();
//!
//! // Environment: outputs a after a delay.
//! let mut env = IoImcBuilder::new();
//! env.set_outputs([a]);
//! let e0 = env.add_state();
//! let e1 = env.add_state();
//! let e2 = env.add_state();
//! env.markovian(e0, 3.0, e1).interactive(e1, a, e2);
//! let env = env.build().unwrap();
//!
//! let product = parallel(&fig1, &env).unwrap();
//! assert!(product.num_states() > 0);
//! assert!(product.outputs().contains(&a)); // a! stays an output
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alphabet;
pub mod automaton;
pub mod budget;
pub mod builder;
pub mod compose;
pub mod dot;
pub mod failpoint;
pub mod form;
pub mod fxhash;
pub mod hide;
pub mod mp;
pub mod par;
pub mod reach;
pub mod scc;
pub mod stats;
pub mod validate;

pub use alphabet::{ActionId, Alphabet};
pub use automaton::{ActionKind, IoImc, StateId, StateLabel};
pub use form::{RateForm, CONST_PARAM};
pub use stats::Stats;
pub use validate::ValidationError;
