//! Incremental construction of I/O-IMCs.

use crate::alphabet::ActionId;
use crate::automaton::{IoImc, StateId, StateLabel};
use crate::form::RateForm;
use crate::validate::{validate, ValidationError};

/// A builder for [`IoImc`] values.
///
/// Typical flow: declare the action signature, add states and transitions,
/// call [`IoImcBuilder::complete_inputs`] to add the input self-loops the
/// paper omits "for readability", then [`IoImcBuilder::build`].
///
/// # Example
///
/// ```
/// use ioimc::{Alphabet, builder::IoImcBuilder};
/// let mut ab = Alphabet::new();
/// let go = ab.intern("go");
/// let mut b = IoImcBuilder::new();
/// b.set_inputs([go]);
/// let s0 = b.add_state();
/// let s1 = b.add_state();
/// b.interactive(s0, go, s1).markovian(s1, 0.5, s0);
/// let imc = b.complete_inputs().build()?;
/// assert_eq!(imc.num_states(), 2);
/// # Ok::<(), ioimc::ValidationError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct IoImcBuilder {
    initial: StateId,
    inputs: Vec<ActionId>,
    outputs: Vec<ActionId>,
    internals: Vec<ActionId>,
    interactive: Vec<Vec<(ActionId, StateId)>>,
    markovian: Vec<Vec<(f64, StateId)>>,
    /// Per-state rate forms, parallel to `markovian` rows. Allocated
    /// lazily by the first [`IoImcBuilder::markovian_formed`] call
    /// (backfilling constant forms for earlier transitions); stays
    /// `None` — and costs nothing — for non-parametric builds.
    forms: Option<Vec<Vec<RateForm>>>,
    labels: Vec<StateLabel>,
}

impl IoImcBuilder {
    /// Creates an empty builder (initial state defaults to state 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares the input actions (replaces any previous declaration).
    pub fn set_inputs(&mut self, actions: impl IntoIterator<Item = ActionId>) -> &mut Self {
        self.inputs = sorted_dedup(actions);
        self
    }

    /// Declares the output actions (replaces any previous declaration).
    pub fn set_outputs(&mut self, actions: impl IntoIterator<Item = ActionId>) -> &mut Self {
        self.outputs = sorted_dedup(actions);
        self
    }

    /// Declares the internal actions (replaces any previous declaration).
    pub fn set_internals(&mut self, actions: impl IntoIterator<Item = ActionId>) -> &mut Self {
        self.internals = sorted_dedup(actions);
        self
    }

    /// Adds a state with label 0 and returns its id.
    pub fn add_state(&mut self) -> StateId {
        self.add_labeled_state(0)
    }

    /// Adds a state with the given label and returns its id.
    pub fn add_labeled_state(&mut self, label: StateLabel) -> StateId {
        let id = u32::try_from(self.labels.len()).expect("more than u32::MAX states");
        self.interactive.push(Vec::new());
        self.markovian.push(Vec::new());
        if let Some(forms) = &mut self.forms {
            forms.push(Vec::new());
        }
        self.labels.push(label);
        id
    }

    /// Number of states added so far.
    pub fn num_states(&self) -> usize {
        self.labels.len()
    }

    /// Sets the initial state (defaults to 0).
    pub fn set_initial(&mut self, s: StateId) -> &mut Self {
        self.initial = s;
        self
    }

    /// Adds an interactive transition `src --a--> tgt`.
    pub fn interactive(&mut self, src: StateId, a: ActionId, tgt: StateId) -> &mut Self {
        self.interactive[src as usize].push((a, tgt));
        self
    }

    /// Adds a Markovian transition `src --rate--> tgt`.
    pub fn markovian(&mut self, src: StateId, rate: f64, tgt: StateId) -> &mut Self {
        self.markovian[src as usize].push((rate, tgt));
        if let Some(forms) = &mut self.forms {
            forms[src as usize].push(RateForm::constant(rate));
        }
        self
    }

    /// Adds a Markovian transition carrying an explicit symbolic rate
    /// form (parametric builds). Transitions added through
    /// [`IoImcBuilder::markovian`] before or after this call get constant
    /// forms, so the finished automaton's forms always cover every
    /// transition.
    pub fn markovian_formed(
        &mut self,
        src: StateId,
        rate: f64,
        tgt: StateId,
        form: RateForm,
    ) -> &mut Self {
        if self.forms.is_none() {
            // Backfill: every transition added so far was constant.
            self.forms = Some(
                self.markovian
                    .iter()
                    .map(|row| row.iter().map(|&(r, _)| RateForm::constant(r)).collect())
                    .collect(),
            );
        }
        self.markovian[src as usize].push((rate, tgt));
        self.forms.as_mut().expect("just ensured")[src as usize].push(form);
        self
    }

    /// Adds a self-loop `s --a--> s` for every input action `a` that has no
    /// transition out of `s`, making the automaton input-enabled.
    pub fn complete_inputs(&mut self) -> &mut Self {
        for s in 0..self.labels.len() {
            for &a in &self.inputs {
                if !self.interactive[s].iter().any(|&(b, _)| b == a) {
                    self.interactive[s].push((a, s as StateId));
                }
            }
        }
        self
    }

    /// Validates and finishes the automaton.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] if the automaton has no states, the
    /// signature sets overlap, a transition uses an undeclared action or an
    /// out-of-range state, a rate is not finite and positive, or some state
    /// is not input-enabled.
    pub fn build(&mut self) -> Result<IoImc, ValidationError> {
        let forms = std::mem::take(&mut self.forms);
        let mut imc = IoImc::from_parts_unchecked(
            self.initial,
            std::mem::take(&mut self.inputs),
            std::mem::take(&mut self.outputs),
            std::mem::take(&mut self.internals),
            std::mem::take(&mut self.interactive),
            std::mem::take(&mut self.markovian),
            std::mem::take(&mut self.labels),
        );
        if let Some(rows) = forms {
            imc.attach_forms(rows.into_iter().flatten().collect());
        }
        imc.normalize();
        validate(&imc)?;
        Ok(imc)
    }
}

fn sorted_dedup(actions: impl IntoIterator<Item = ActionId>) -> Vec<ActionId> {
    let mut v: Vec<ActionId> = actions.into_iter().collect();
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Alphabet;

    #[test]
    fn complete_inputs_adds_missing_self_loops_only() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let mut b = IoImcBuilder::new();
        b.set_inputs([a]);
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.interactive(s0, a, s1); // s0 already handles a
        let imc = b.complete_inputs().build().unwrap();
        assert_eq!(imc.interactive_from(0), &[(a, 1)]);
        assert_eq!(imc.interactive_from(1), &[(a, 1)]);
    }

    #[test]
    fn build_rejects_non_input_enabled() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let mut b = IoImcBuilder::new();
        b.set_inputs([a]);
        b.add_state();
        assert!(b.build().is_err());
    }

    #[test]
    fn build_rejects_bad_rate() {
        let mut b = IoImcBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.markovian(s0, -1.0, s1);
        assert!(b.build().is_err());
        let mut b = IoImcBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.markovian(s0, f64::NAN, s1);
        assert!(b.build().is_err());
    }

    #[test]
    fn markovian_self_loops_are_cancelled() {
        let mut b = IoImcBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.markovian(s0, 3.0, s0).markovian(s0, 1.0, s1);
        let imc = b.build().unwrap();
        assert_eq!(imc.markovian_from(0), &[(1.0, 1)]);
    }

    #[test]
    fn build_rejects_overlapping_signature() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let mut b = IoImcBuilder::new();
        b.set_inputs([a]).set_outputs([a]);
        let s = b.add_state();
        b.interactive(s, a, s);
        assert!(b.build().is_err());
    }

    #[test]
    fn build_rejects_undeclared_action() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let mut b = IoImcBuilder::new();
        let s = b.add_state();
        b.interactive(s, a, s);
        assert!(b.build().is_err());
    }

    #[test]
    fn labels_are_kept() {
        let mut b = IoImcBuilder::new();
        let s0 = b.add_labeled_state(0b10);
        let _ = s0;
        let imc = b.build().unwrap();
        assert_eq!(imc.label(0), 0b10);
    }

    #[test]
    fn empty_automaton_is_rejected() {
        assert!(IoImcBuilder::new().build().is_err());
    }
}
