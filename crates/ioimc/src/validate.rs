//! Well-formedness checks for I/O-IMCs.

use std::fmt;

use crate::alphabet::ActionId;
use crate::automaton::{IoImc, StateId};

/// The ways an I/O-IMC can be malformed.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// The automaton has no states.
    Empty,
    /// The initial state is out of range.
    BadInitial(StateId),
    /// An action appears in two signature sets.
    OverlappingSignature(ActionId),
    /// A transition uses an action that is not in the signature.
    UndeclaredAction {
        /// The source state of the offending transition.
        state: StateId,
        /// The undeclared action.
        action: ActionId,
    },
    /// A transition target is out of range.
    BadTarget {
        /// The source state of the offending transition.
        state: StateId,
        /// The out-of-range target.
        target: StateId,
    },
    /// A Markovian rate is not finite and strictly positive.
    BadRate {
        /// The source state of the offending transition.
        state: StateId,
        /// The offending rate.
        rate: f64,
    },
    /// A state misses a transition for an input action (not input-enabled).
    NotInputEnabled {
        /// The state missing the input transition.
        state: StateId,
        /// The input action it misses.
        action: ActionId,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "automaton has no states"),
            Self::BadInitial(s) => write!(f, "initial state {s} out of range"),
            Self::OverlappingSignature(a) => {
                write!(f, "action {a} appears in more than one signature set")
            }
            Self::UndeclaredAction { state, action } => {
                write!(f, "state {state} uses undeclared action {action}")
            }
            Self::BadTarget { state, target } => {
                write!(f, "state {state} has transition to invalid state {target}")
            }
            Self::BadRate { state, rate } => {
                write!(f, "state {state} has invalid markovian rate {rate}")
            }
            Self::NotInputEnabled { state, action } => {
                write!(f, "state {state} is not input-enabled for action {action}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Checks all [`IoImc`] invariants; see [`ValidationError`] for the list.
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn validate(imc: &IoImc) -> Result<(), ValidationError> {
    let n = imc.num_states();
    if n == 0 {
        return Err(ValidationError::Empty);
    }
    if imc.initial() as usize >= n {
        return Err(ValidationError::BadInitial(imc.initial()));
    }
    // Signature disjointness: sets are sorted, walk pairwise.
    for set_pair in [
        (imc.inputs(), imc.outputs()),
        (imc.inputs(), imc.internals()),
        (imc.outputs(), imc.internals()),
    ] {
        if let Some(a) = first_common(set_pair.0, set_pair.1) {
            return Err(ValidationError::OverlappingSignature(a));
        }
    }
    for s in 0..n as StateId {
        for &(a, t) in imc.interactive_from(s) {
            if imc.kind_of(a).is_none() {
                return Err(ValidationError::UndeclaredAction {
                    state: s,
                    action: a,
                });
            }
            if t as usize >= n {
                return Err(ValidationError::BadTarget {
                    state: s,
                    target: t,
                });
            }
        }
        for &(r, t) in imc.markovian_from(s) {
            if !(r.is_finite() && r > 0.0) {
                return Err(ValidationError::BadRate { state: s, rate: r });
            }
            if t as usize >= n {
                return Err(ValidationError::BadTarget {
                    state: s,
                    target: t,
                });
            }
        }
        for &a in imc.inputs() {
            if !imc.interactive_from(s).iter().any(|&(b, _)| b == a) {
                return Err(ValidationError::NotInputEnabled {
                    state: s,
                    action: a,
                });
            }
        }
    }
    Ok(())
}

fn first_common(a: &[ActionId], b: &[ActionId]) -> Option<ActionId> {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return Some(a[i]),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IoImcBuilder;
    use crate::Alphabet;

    #[test]
    fn valid_automaton_passes() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let mut b = IoImcBuilder::new();
        b.set_inputs([a]);
        let s = b.add_state();
        b.interactive(s, a, s);
        let imc = b.build().unwrap();
        assert!(validate(&imc).is_ok());
    }

    #[test]
    fn bad_initial_detected() {
        let imc = IoImc::from_parts_unchecked(
            5,
            vec![],
            vec![],
            vec![],
            vec![vec![]],
            vec![vec![]],
            vec![0],
        );
        assert_eq!(validate(&imc), Err(ValidationError::BadInitial(5)));
    }

    #[test]
    fn bad_target_detected() {
        let imc = IoImc::from_parts_unchecked(
            0,
            vec![],
            vec![],
            vec![],
            vec![vec![]],
            vec![vec![(1.0, 7)]],
            vec![0],
        );
        assert_eq!(
            validate(&imc),
            Err(ValidationError::BadTarget {
                state: 0,
                target: 7
            })
        );
    }

    #[test]
    fn error_display_is_nonempty() {
        let e = ValidationError::NotInputEnabled {
            state: 3,
            action: ActionId(1),
        };
        assert!(!e.to_string().is_empty());
    }
}
