//! Symbolic rate forms: the metadata that makes a reduced model
//! re-ratable.
//!
//! A parametric build tags every Markovian transition with a [`RateForm`]
//! describing its numeric rate as a sum of atoms `coeff * θ_pid` (plus
//! constant atoms). The aggregation pipeline never *reads* forms — all
//! numeric rate arithmetic is exactly the non-parametric code path — it
//! only *carries* them: wherever two transitions merge and their rates
//! are summed, their atom lists are concatenated in the same order, and
//! wherever a transition is dropped its form is dropped. The final
//! quotient CTMC therefore knows each lumped rate as an explicit linear
//! function of the parameter vector, and can be re-rated at any point
//! without re-running composition or bisimulation.
//!
//! Evaluation is order-sensitive on purpose: [`RateForm::eval`]
//! accumulates atoms in stored order, and the stored order reproduces
//! the pipeline's own rate-summation order. Evaluating at the base point
//! (every `θ_pid` at the value the model was built with) reproduces the
//! pipeline's rates to the last bit for single-atom merges and to
//! float-associativity for multi-atom ones — and, more importantly, the
//! evaluation order is deterministic, so re-rating is reproducible
//! across runs and thread counts.

/// The pseudo-parameter id of a constant atom: `(CONST_PARAM, c)`
/// contributes `c` regardless of the parameter values.
pub const CONST_PARAM: u32 = u32::MAX;

/// One Markovian rate as a linear function of the parameter vector:
/// `rate(θ) = Σ coeff_i · θ_{pid_i}` with constant atoms for unbound
/// contributions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RateForm {
    /// `(pid, coeff)` atoms in accumulation order; `pid == CONST_PARAM`
    /// marks a constant contribution of `coeff`.
    pub atoms: Vec<(u32, f64)>,
}

impl RateForm {
    /// A form with no parameter dependence: evaluates to `value`.
    pub fn constant(value: f64) -> Self {
        Self {
            atoms: vec![(CONST_PARAM, value)],
        }
    }

    /// A single-parameter form `coeff · θ_pid`.
    pub fn scaled(pid: u32, coeff: f64) -> Self {
        Self {
            atoms: vec![(pid, coeff)],
        }
    }

    /// Evaluates the form at the parameter vector `values` (indexed by
    /// pid), accumulating atoms in stored order.
    ///
    /// # Panics
    ///
    /// Panics if an atom references a pid outside `values`.
    pub fn eval(&self, values: &[f64]) -> f64 {
        let mut acc = 0.0f64;
        for &(pid, coeff) in &self.atoms {
            if pid == CONST_PARAM {
                acc += coeff;
            } else {
                acc += coeff * values[pid as usize];
            }
        }
        acc
    }

    /// Appends `other`'s atoms — the form counterpart of summing two
    /// rates.
    pub fn absorb(&mut self, other: &RateForm) {
        self.atoms.extend_from_slice(&other.atoms);
    }

    /// Whether any atom references an actual parameter.
    pub fn is_parametric(&self) -> bool {
        self.atoms.iter().any(|&(pid, _)| pid != CONST_PARAM)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_accumulates_in_order() {
        let mut f = RateForm::scaled(0, 2.0);
        f.absorb(&RateForm::constant(1.5));
        f.absorb(&RateForm::scaled(1, 0.5));
        assert_eq!(f.eval(&[3.0, 4.0]), 2.0 * 3.0 + 1.5 + 0.5 * 4.0);
        assert!(f.is_parametric());
        assert!(!RateForm::constant(7.0).is_parametric());
    }

    #[test]
    fn constant_form_reproduces_value() {
        let f = RateForm::constant(0.125);
        assert_eq!(f.eval(&[]).to_bits(), 0.125f64.to_bits());
    }

    #[test]
    fn scaled_form_matches_product() {
        let f = RateForm::scaled(0, 0.3);
        let v = 0.007;
        assert_eq!(f.eval(&[v]).to_bits(), (0.3f64 * v).to_bits());
    }
}
