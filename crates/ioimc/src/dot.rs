//! Graphviz (DOT) export.
//!
//! The rendering conventions mirror the paper's figures: Markovian
//! transitions dashed, interactive transitions solid, input actions suffixed
//! `?`, outputs `!`, internals `;`.

use std::fmt::Write as _;

use crate::alphabet::Alphabet;
use crate::automaton::{ActionKind, IoImc};

/// Renders `imc` to DOT. `name` becomes the digraph name; state labels with
/// bit 0 set (Arcade's "down" proposition) are drawn shaded.
pub fn to_dot(imc: &IoImc, alphabet: &Alphabet, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  rankdir=LR; node [shape=circle];");
    let _ = writeln!(out, "  init [shape=point];");
    let _ = writeln!(out, "  init -> s{};", imc.initial());
    for s in 0..imc.num_states() as u32 {
        let style = if imc.label(s) & 1 != 0 {
            " style=filled fillcolor=lightgray"
        } else {
            ""
        };
        let _ = writeln!(out, "  s{s} [label=\"{s}\"{style}];");
    }
    for (s, a, t) in imc.iter_interactive() {
        let suffix = match imc.kind_of(a) {
            Some(ActionKind::Input) => "?",
            Some(ActionKind::Output) => "!",
            Some(ActionKind::Internal) => ";",
            None => "",
        };
        let _ = writeln!(
            out,
            "  s{s} -> s{t} [label=\"{}{suffix}\"];",
            alphabet.name(a)
        );
    }
    for (s, r, t) in imc.iter_markovian() {
        let _ = writeln!(out, "  s{s} -> s{t} [label=\"{r}\", style=dashed];");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IoImcBuilder;

    #[test]
    fn dot_contains_all_elements() {
        let mut ab = Alphabet::new();
        let a = ab.intern("fail");
        let mut b = IoImcBuilder::new();
        b.set_outputs([a]);
        let s0 = b.add_state();
        let s1 = b.add_labeled_state(1);
        b.markovian(s0, 2.0, s1).interactive(s1, a, s0);
        let imc = b.build().unwrap();
        let dot = to_dot(&imc, &ab, "test");
        assert!(dot.contains("digraph \"test\""));
        assert!(dot.contains("fail!"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("fillcolor=lightgray"));
        assert!(dot.contains("init -> s0"));
    }
}
