//! Parallel composition of I/O-IMCs.
//!
//! Synchronization follows the I/O-automata discipline the paper adopts:
//! every automaton that has a visible action `a` in its signature must
//! participate in every `a`-transition. Because I/O-IMCs are input-enabled,
//! a component can never block an output of another component; when an
//! output `a!` synchronizes with inputs `a?` the result is an output `a!`.
//! Markovian transitions interleave.

use std::fmt;

use crate::alphabet::ActionId;
use crate::automaton::{IoImc, StateId};
use crate::budget::{self, BudgetExceeded};

/// The ways two I/O-IMCs can fail to be composable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComposeError {
    /// Both automata declare the action as an output.
    SharedOutput(ActionId),
    /// An internal action of one automaton is a *visible* action of the
    /// other. Internal actions never synchronize, so sharing an internal
    /// action id between two automata is harmless, but an internal action
    /// clashing with an input or output would silently fail to synchronize.
    SharedInternal(ActionId),
    /// The product BFS outgrew the ambient [`crate::budget::Budget`]
    /// (state/transition ceiling, deadline, or cancellation). Combinatorial
    /// products explode *inside* a single composition step, so the ceiling
    /// must bite here, not only between steps.
    Budget(BudgetExceeded),
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SharedOutput(a) => write!(f, "action {a} is an output of both automata"),
            Self::SharedInternal(a) => {
                write!(f, "internal action {a} clashes with the other automaton")
            }
            Self::Budget(e) => write!(f, "composition aborted: {e}"),
        }
    }
}

impl std::error::Error for ComposeError {}

/// Checks whether `a` and `b` are composable (disjoint outputs, private
/// internals).
///
/// # Errors
///
/// Returns the offending action on the first violation.
pub fn check_compatible(a: &IoImc, b: &IoImc) -> Result<(), ComposeError> {
    for &x in a.outputs() {
        if b.outputs().binary_search(&x).is_ok() {
            return Err(ComposeError::SharedOutput(x));
        }
    }
    for &x in a.internals() {
        if b.is_visible(x) {
            return Err(ComposeError::SharedInternal(x));
        }
    }
    for &x in b.internals() {
        if a.is_visible(x) {
            return Err(ComposeError::SharedInternal(x));
        }
    }
    Ok(())
}

/// Parallel composition `a || b`, restricted to states reachable from the
/// pair of initial states.
///
/// The composite signature is: outputs `O_a ∪ O_b`; inputs
/// `(I_a ∪ I_b) \ (O_a ∪ O_b)`; internals `H_a ∪ H_b`. State labels are
/// OR-ed.
///
/// # Errors
///
/// Returns a [`ComposeError`] if the automata are not composable.
///
/// # Example
///
/// ```
/// use ioimc::{Alphabet, builder::IoImcBuilder, compose::parallel};
/// let mut ab = Alphabet::new();
/// let ping = ab.intern("ping");
/// let mut sender = IoImcBuilder::new();
/// sender.set_outputs([ping]);
/// let s0 = sender.add_state();
/// let s1 = sender.add_state();
/// sender.interactive(s0, ping, s1);
/// let sender = sender.build()?;
///
/// let mut receiver = IoImcBuilder::new();
/// receiver.set_inputs([ping]);
/// let r0 = receiver.add_state();
/// let r1 = receiver.add_state();
/// receiver.interactive(r0, ping, r1);
/// let receiver = receiver.complete_inputs().build()?;
///
/// let p = parallel(&sender, &receiver)?;
/// // ping! forces both to move: (0,0) -ping!-> (1,1)
/// assert_eq!(p.num_states(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parallel(a: &IoImc, b: &IoImc) -> Result<IoImc, ComposeError> {
    Ok(parallel_with_pairs(a, b)?.0)
}

/// [`parallel`], additionally returning the provenance of every product
/// state: `pairs[s] = (sa, sb)` is the component state pair the composite
/// state `s` was built from. The numbering is the BFS discovery order used
/// by [`parallel`] itself (normalization sorts transition rows in place and
/// never renumbers states), so the map stays valid for the returned
/// automaton. The aggregation engine uses it to carry the quotient
/// partition of step N into the refinement of step N+1.
///
/// # Errors
///
/// Returns a [`ComposeError`] if the automata are not composable.
#[allow(clippy::type_complexity)]
pub fn parallel_with_pairs(
    a: &IoImc,
    b: &IoImc,
) -> Result<(IoImc, Vec<(StateId, StateId)>), ComposeError> {
    check_compatible(a, b)?;

    // Composite signature.
    let mut outputs: Vec<ActionId> = a.outputs().iter().chain(b.outputs()).copied().collect();
    outputs.sort_unstable();
    outputs.dedup();
    let mut inputs: Vec<ActionId> = a
        .inputs()
        .iter()
        .chain(b.inputs())
        .copied()
        .filter(|x| outputs.binary_search(x).is_err())
        .collect();
    inputs.sort_unstable();
    inputs.dedup();
    let mut internals: Vec<ActionId> = a.internals().iter().chain(b.internals()).copied().collect();
    internals.sort_unstable();
    internals.dedup();

    // BFS over the reachable product states. States are numbered in
    // discovery order and fully expanded one at a time, so the composite
    // transitions can be emitted straight into flat CSR storage — no
    // per-state Vec allocations on this hot path.
    let mut index: crate::fxhash::FxHashMap<(StateId, StateId), StateId> =
        crate::fxhash::FxHashMap::default();
    let mut pairs: Vec<(StateId, StateId)> = Vec::new();
    let mut inter_off: Vec<u32> = vec![0];
    let mut inter: Vec<(ActionId, StateId)> = Vec::new();
    let mut mark_off: Vec<u32> = vec![0];
    let mut mark: Vec<(f64, StateId)> = Vec::new();
    let mut labels: Vec<u64> = Vec::new();
    // Rate forms ride along whenever either side carries them: an
    // interleaved transition keeps its component's form, with constant
    // forms synthesized for the formless side.
    let carry_forms = a.forms().is_some() || b.forms().is_some();
    let mut forms: Vec<crate::form::RateForm> = Vec::new();

    let get_or_insert = |sa: StateId,
                         sb: StateId,
                         index: &mut crate::fxhash::FxHashMap<(StateId, StateId), StateId>,
                         pairs: &mut Vec<(StateId, StateId)>|
     -> StateId {
        *index.entry((sa, sb)).or_insert_with(|| {
            let id = pairs.len() as StateId;
            pairs.push((sa, sb));
            id
        })
    };

    let init = get_or_insert(a.initial(), b.initial(), &mut index, &mut pairs);
    debug_assert_eq!(init, 0);
    // Poll the ambient budget every `CHECK_MASK + 1` expanded states: the
    // product can be exponentially larger than either factor, so the
    // state/transition ceiling (and the deadline) must be able to stop
    // the BFS itself.
    const CHECK_MASK: usize = 0xFFF;
    let limited = budget::current().is_some_and(|b| b.is_limited());
    let mut next = 0usize;
    while next < pairs.len() {
        if limited && next & CHECK_MASK == 0 {
            budget::check_model_size(pairs.len() as u64, (inter.len() + mark.len()) as u64)
                .map_err(ComposeError::Budget)?;
        }
        let (sa, sb) = pairs[next];

        // Markovian interleaving.
        for (i, &(r, ta)) in a.markovian_from(sa).iter().enumerate() {
            let t = get_or_insert(ta, sb, &mut index, &mut pairs);
            mark.push((r, t));
            if carry_forms {
                forms.push(match a.markovian_forms_from(sa) {
                    Some(f) => f[i].clone(),
                    None => crate::form::RateForm::constant(r),
                });
            }
        }
        for (i, &(r, tb)) in b.markovian_from(sb).iter().enumerate() {
            let t = get_or_insert(sa, tb, &mut index, &mut pairs);
            mark.push((r, t));
            if carry_forms {
                forms.push(match b.markovian_forms_from(sb) {
                    Some(f) => f[i].clone(),
                    None => crate::form::RateForm::constant(r),
                });
            }
        }

        // Interactive transitions of `a`.
        for &(act, ta) in a.interactive_from(sa) {
            if b.is_visible(act) {
                // Shared visible action: both move.
                let mut matched = false;
                for &(act_b, tb) in b.interactive_from(sb) {
                    if act_b == act {
                        let t = get_or_insert(ta, tb, &mut index, &mut pairs);
                        inter.push((act, t));
                        matched = true;
                    }
                }
                // If `act` is an *input* of `b`, input-enabledness demands
                // a transition in every state; a missing one would make
                // this synchronization vanish silently.
                debug_assert!(
                    matched || b.kind_of(act) != Some(crate::ActionKind::Input),
                    "partner automaton is not input-enabled for shared \
                     action {act} in state {sb}: synchronization dropped"
                );
            } else {
                let t = get_or_insert(ta, sb, &mut index, &mut pairs);
                inter.push((act, t));
            }
        }
        // Interactive transitions of `b` on actions not shared with `a`
        // (shared ones were handled above).
        for &(act, tb) in b.interactive_from(sb) {
            if !a.is_visible(act) {
                let t = get_or_insert(sa, tb, &mut index, &mut pairs);
                inter.push((act, t));
            } else {
                // Mirror of the check above: `a` must offer every one of
                // its shared *inputs* here, or the pairing was lost when
                // `a`'s transitions were expanded.
                debug_assert!(
                    a.kind_of(act) != Some(crate::ActionKind::Input)
                        || a.interactive_from(sa).iter().any(|&(x, _)| x == act),
                    "automaton is not input-enabled for shared action \
                     {act} in state {sa}: synchronization dropped"
                );
            }
        }

        inter_off.push(u32::try_from(inter.len()).expect("more than u32::MAX transitions"));
        mark_off.push(u32::try_from(mark.len()).expect("more than u32::MAX transitions"));
        labels.push(a.label(sa) | b.label(sb));
        next += 1;
    }

    if limited {
        // Final exact check: the last BFS chunk may have crossed a ceiling
        // between polls.
        budget::check_model_size(pairs.len() as u64, (inter.len() + mark.len()) as u64)
            .map_err(ComposeError::Budget)?;
    }
    let mut out = IoImc::from_csr_unchecked(
        0, inputs, outputs, internals, inter_off, inter, mark_off, mark, labels,
    );
    if carry_forms {
        out.attach_forms(forms);
    }
    out.normalize();
    Ok((out, pairs))
}

/// Folds [`parallel`] over a non-empty slice of automata, left to right.
///
/// # Errors
///
/// Returns the first composition error.
///
/// # Panics
///
/// Panics if `automata` is empty.
pub fn parallel_all(automata: &[IoImc]) -> Result<IoImc, ComposeError> {
    assert!(!automata.is_empty(), "parallel_all of empty slice");
    let mut acc = automata[0].clone();
    for x in &automata[1..] {
        acc = parallel(&acc, x)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IoImcBuilder;
    use crate::Alphabet;

    /// Output automaton: emits `a!` after rate-λ delay, then stops.
    fn emitter(a: ActionId, rate: f64) -> IoImc {
        let mut b = IoImcBuilder::new();
        b.set_outputs([a]);
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        b.markovian(s0, rate, s1).interactive(s1, a, s2);
        b.build().unwrap()
    }

    /// Input automaton: flips between two states on `a?`.
    fn listener(a: ActionId) -> IoImc {
        let mut b = IoImcBuilder::new();
        b.set_inputs([a]);
        let s0 = b.add_state();
        let s1 = b.add_labeled_state(1);
        b.interactive(s0, a, s1).interactive(s1, a, s0);
        b.build().unwrap()
    }

    #[test]
    fn output_synchronizes_with_input() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let p = parallel(&emitter(a, 1.0), &listener(a)).unwrap();
        // (0,0) -1.0-> (1,0) -a!-> (2,1); 3 reachable states.
        assert_eq!(p.num_states(), 3);
        assert_eq!(p.outputs(), &[a]);
        assert!(p.inputs().is_empty());
        // label of final state comes from the listener
        let last = p
            .iter_interactive()
            .map(|(_, _, t)| t)
            .next()
            .expect("one interactive transition");
        assert_eq!(p.label(last), 1);
    }

    #[test]
    fn two_inputs_synchronize_as_input() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let p = parallel(&listener(a), &listener(a)).unwrap();
        assert_eq!(p.inputs(), &[a]);
        // lock-step: (0,0) <-> (1,1); only 2 reachable states
        assert_eq!(p.num_states(), 2);
    }

    #[test]
    fn shared_output_is_rejected() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let e = parallel(&emitter(a, 1.0), &emitter(a, 2.0));
        assert_eq!(e, Err(ComposeError::SharedOutput(a)));
    }

    #[test]
    fn internal_clash_is_rejected() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let mut b = IoImcBuilder::new();
        b.set_internals([a]);
        let s = b.add_state();
        b.interactive(s, a, s);
        let internal = b.build().unwrap();
        let e = parallel(&internal, &listener(a));
        assert_eq!(e, Err(ComposeError::SharedInternal(a)));
    }

    #[test]
    fn markovian_interleaves() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b_ = ab.intern("b");
        let p = parallel(&emitter(a, 1.0), &emitter(b_, 2.0)).unwrap();
        // initial state has both rates racing
        assert_eq!(p.markovian_from(p.initial()).len(), 2);
        let total: f64 = p.markovian_from(p.initial()).iter().map(|x| x.0).sum();
        assert!((total - 3.0).abs() < 1e-12);
    }

    #[test]
    fn unrelated_actions_interleave() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b_ = ab.intern("b");
        let p = parallel(&listener(a), &listener(b_)).unwrap();
        // full 2x2 product reachable via independent inputs
        assert_eq!(p.num_states(), 4);
        let mut ins = p.inputs().to_vec();
        ins.sort_unstable();
        assert_eq!(ins, vec![a, b_]);
    }

    #[test]
    fn parallel_all_folds() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let p = parallel_all(&[emitter(a, 1.0), listener(a), listener(a)]).unwrap();
        assert_eq!(p.num_states(), 3);
    }

    /// An ambient state ceiling aborts the product BFS with a structured
    /// error instead of materializing the full product.
    #[test]
    fn ambient_state_ceiling_aborts_composition() {
        use crate::budget::{scope, Budget, BudgetKind};
        use std::sync::Arc;
        let mut ab = Alphabet::new();
        // 2x2 independent listeners: full product has 4 states.
        let a = ab.intern("a");
        let b_ = ab.intern("b");
        let (x, y) = (listener(a), listener(b_));
        let cap = Arc::new(Budget::unlimited().with_max_states(3));
        let e = scope(Some(cap), || parallel(&x, &y)).unwrap_err();
        match e {
            ComposeError::Budget(be) => assert_eq!(be.kind, BudgetKind::States),
            other => panic!("expected budget error, got {other:?}"),
        }
        // Without the ambient budget the same product composes fine.
        assert_eq!(parallel(&x, &y).unwrap().num_states(), 4);
    }

    #[test]
    fn composition_is_commutative_on_counts() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let x = emitter(a, 1.0);
        let y = listener(a);
        let xy = parallel(&x, &y).unwrap();
        let yx = parallel(&y, &x).unwrap();
        assert_eq!(xy.num_states(), yx.num_states());
        assert_eq!(xy.num_transitions(), yx.num_transitions());
    }
}
