//! Maximal progress.
//!
//! Output and internal actions of an I/O-IMC "cannot be delayed" (paper §2):
//! when such an action is enabled it fires immediately, so the exponential
//! races of the same state can never win. The *maximal-progress cut* removes
//! Markovian transitions from every unstable state. Applying the cut before
//! bisimulation reduction is sound and often shrinks the model.

use crate::automaton::IoImc;

/// Removes all Markovian transitions from states with an enabled urgent
/// (output or internal) transition, compacting the CSR storage in place.
/// Returns the number of transitions removed.
pub fn maximal_progress_cut(imc: &mut IoImc) -> usize {
    let unstable: Vec<bool> = (0..imc.num_states() as u32)
        .map(|s| imc.is_unstable(s))
        .collect();
    imc.clear_markovian_rows(|s| unstable[s as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IoImcBuilder;
    use crate::Alphabet;

    #[test]
    fn cut_removes_race_with_output() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let mut bld = IoImcBuilder::new();
        bld.set_inputs([a]).set_outputs([b]);
        let s0 = bld.add_state();
        let s1 = bld.add_state();
        let s2 = bld.add_state();
        // s0 races output b! against rate 1.0
        bld.interactive(s0, b, s1)
            .markovian(s0, 1.0, s2)
            // s1 races input a? against rate 2.0 -- inputs are NOT urgent
            .interactive(s1, a, s2)
            .markovian(s1, 2.0, s2);
        let mut imc = bld.complete_inputs().build().unwrap();
        let removed = maximal_progress_cut(&mut imc);
        assert_eq!(removed, 1);
        assert!(imc.markovian_from(0).is_empty());
        assert_eq!(imc.markovian_from(1).len(), 1);
    }

    #[test]
    fn cut_is_idempotent() {
        let mut ab = Alphabet::new();
        let b = ab.intern("b");
        let mut bld = IoImcBuilder::new();
        bld.set_outputs([b]);
        let s0 = bld.add_state();
        let s1 = bld.add_state();
        bld.interactive(s0, b, s1).markovian(s0, 3.0, s1);
        let mut imc = bld.build().unwrap();
        assert_eq!(maximal_progress_cut(&mut imc), 1);
        assert_eq!(maximal_progress_cut(&mut imc), 0);
    }
}
