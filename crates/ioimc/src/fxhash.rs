//! A minimal Fx-style hasher for the refinement hot paths.
//!
//! Signature interning hashes a `[SigEntry]` slice per re-signed state —
//! millions of times per aggregation — and the DoS resistance of std's
//! default SipHash buys nothing against our own signature data. This is
//! the classic multiply-rotate-xor hash used by rustc, dependency-free
//! and deterministic across processes (no random seeding), which also
//! keeps hash-map behavior reproducible run to run.

use std::hash::{BuildHasher, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One in-flight Fx hash computation.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("chunk of 8")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = 0u64;
            for (i, &b) in rem.iter().enumerate() {
                word |= u64::from(b) << (8 * i);
            }
            self.add(word);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` handing out zero-state [`FxHasher`]s.
#[derive(Default, Clone)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_ne!(hash_of(&42u32), hash_of(&43u32));
        assert_ne!(hash_of(&[1u32, 2, 3][..]), hash_of(&[1u32, 3, 2][..]));
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
        for i in 0..100u32 {
            m.insert(vec![i, i + 1], i);
        }
        for i in 0..100u32 {
            assert_eq!(m.get(&vec![i, i + 1]), Some(&i));
        }
    }
}
