//! The I/O-IMC automaton type.

use crate::alphabet::ActionId;
use crate::form::RateForm;

/// Index of a state in an [`IoImc`].
pub type StateId = u32;

/// A state label: a bitmask of atomic propositions.
///
/// Arcade uses bit 0 for "system down" (set by the observer component);
/// other bits are free for user-defined propositions. Labels of composed
/// states are the bitwise OR of the component labels.
pub type StateLabel = u64;

/// The three kinds of interactive actions of an I/O-IMC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionKind {
    /// `a?` — controlled by the environment; input-enabled in every state.
    Input,
    /// `a!` — controlled by the automaton; cannot be delayed (urgent).
    Output,
    /// `a;` — invisible; cannot be delayed (urgent).
    Internal,
}

/// An Input/Output Interactive Markov Chain.
///
/// Transitions are stored in flat CSR (compressed sparse row) form: one
/// contiguous transition array per kind plus an `n + 1` offset array, so
/// that a state's transitions are a slice of a single allocation. The
/// aggregation pipeline iterates these slices millions of times per
/// composition step; keeping them contiguous (instead of one heap `Vec`
/// per state) is what makes the hot loops cache-friendly and the
/// per-automaton allocation count O(1).
///
/// Mostly immutable after construction (see
/// [`crate::builder::IoImcBuilder`]); the transformation passes either
/// return new automata ([`crate::compose::parallel`],
/// [`crate::reach::restrict_reachable`]) or edit in place without
/// copying the transition arrays ([`crate::hide::hide_outputs`],
/// [`crate::hide::prune_inputs`], [`crate::mp::maximal_progress_cut`]).
///
/// Invariants (checked by [`crate::validate::validate`]):
///
/// * the input, output and internal action sets are disjoint and sorted,
/// * every transition's action belongs to the signature,
/// * every state has at least one transition for every input action
///   (input-enabledness),
/// * all Markovian rates are finite and strictly positive,
/// * all transition targets are valid states.
#[derive(Debug, Clone, PartialEq)]
pub struct IoImc {
    pub(crate) initial: StateId,
    pub(crate) inputs: Vec<ActionId>,
    pub(crate) outputs: Vec<ActionId>,
    pub(crate) internals: Vec<ActionId>,
    /// CSR offsets into `inter`: state `s` owns `inter[inter_off[s]..inter_off[s+1]]`.
    pub(crate) inter_off: Vec<u32>,
    /// All interactive transitions `(action, target)`, grouped by source.
    pub(crate) inter: Vec<(ActionId, StateId)>,
    /// CSR offsets into `mark`.
    pub(crate) mark_off: Vec<u32>,
    /// All Markovian transitions `(rate, target)`, grouped by source.
    pub(crate) mark: Vec<(f64, StateId)>,
    /// Optional symbolic rate forms, parallel to `mark` (parametric
    /// builds only — `None` for ordinary automata, with zero overhead).
    /// Every pass that permutes, merges or drops `mark` entries mirrors
    /// the operation here, so `forms[i]` always describes `mark[i].0`.
    pub(crate) forms: Option<Vec<RateForm>>,
    pub(crate) labels: Vec<StateLabel>,
}

impl IoImc {
    /// Assembles an I/O-IMC from per-state transition lists without
    /// validation.
    ///
    /// Prefer [`crate::builder::IoImcBuilder`]; this is the escape hatch used
    /// by the transformation passes. Signature sets must be sorted and
    /// disjoint and `interactive`, `markovian`, `labels` must have one entry
    /// per state. The lists are flattened into CSR storage.
    pub fn from_parts_unchecked(
        initial: StateId,
        inputs: Vec<ActionId>,
        outputs: Vec<ActionId>,
        internals: Vec<ActionId>,
        interactive: Vec<Vec<(ActionId, StateId)>>,
        markovian: Vec<Vec<(f64, StateId)>>,
        labels: Vec<StateLabel>,
    ) -> Self {
        debug_assert_eq!(interactive.len(), markovian.len());
        debug_assert_eq!(interactive.len(), labels.len());
        let (inter_off, inter) = flatten(interactive);
        let (mark_off, mark) = flatten(markovian);
        Self {
            initial,
            inputs,
            outputs,
            internals,
            inter_off,
            inter,
            mark_off,
            mark,
            forms: None,
            labels,
        }
    }

    /// Assembles an I/O-IMC directly from CSR arrays without validation.
    ///
    /// `inter_off`/`mark_off` must be monotone, have `labels.len() + 1`
    /// entries, start at 0 and end at the respective transition count.
    /// Used by the passes that discover states in order (composition, BFS
    /// renumbering) and can therefore emit CSR without an intermediate
    /// per-state `Vec`.
    #[allow(clippy::too_many_arguments)]
    pub fn from_csr_unchecked(
        initial: StateId,
        inputs: Vec<ActionId>,
        outputs: Vec<ActionId>,
        internals: Vec<ActionId>,
        inter_off: Vec<u32>,
        inter: Vec<(ActionId, StateId)>,
        mark_off: Vec<u32>,
        mark: Vec<(f64, StateId)>,
        labels: Vec<StateLabel>,
    ) -> Self {
        debug_assert_eq!(inter_off.len(), labels.len() + 1);
        debug_assert_eq!(mark_off.len(), labels.len() + 1);
        debug_assert_eq!(*inter_off.last().unwrap_or(&0) as usize, inter.len());
        debug_assert_eq!(*mark_off.last().unwrap_or(&0) as usize, mark.len());
        debug_assert!(inter_off.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(mark_off.windows(2).all(|w| w[0] <= w[1]));
        Self {
            initial,
            inputs,
            outputs,
            internals,
            inter_off,
            inter,
            mark_off,
            mark,
            forms: None,
            labels,
        }
    }

    /// Attaches symbolic rate forms, one per Markovian transition in
    /// storage order. Call before [`IoImc::normalize`] — normalization
    /// keeps the forms aligned from then on.
    ///
    /// # Panics
    ///
    /// Panics if `forms.len()` differs from the Markovian transition
    /// count.
    pub fn attach_forms(&mut self, forms: Vec<RateForm>) {
        assert_eq!(
            forms.len(),
            self.mark.len(),
            "one rate form per Markovian transition"
        );
        self.forms = Some(forms);
    }

    /// The symbolic rate forms, parallel to the flat Markovian transition
    /// array of [`IoImc::markovian_csr`] (`None` for non-parametric
    /// automata).
    pub fn forms(&self) -> Option<&[RateForm]> {
        self.forms.as_deref()
    }

    /// The rate forms of state `s`'s Markovian transitions, parallel to
    /// [`IoImc::markovian_from`].
    pub fn markovian_forms_from(&self, s: StateId) -> Option<&[RateForm]> {
        let s = s as usize;
        self.forms
            .as_ref()
            .map(|f| &f[self.mark_off[s] as usize..self.mark_off[s + 1] as usize])
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.labels.len()
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Sorted input action set.
    pub fn inputs(&self) -> &[ActionId] {
        &self.inputs
    }

    /// Sorted output action set.
    pub fn outputs(&self) -> &[ActionId] {
        &self.outputs
    }

    /// Sorted internal action set.
    pub fn internals(&self) -> &[ActionId] {
        &self.internals
    }

    /// The kind of `a` in this automaton's signature, if present.
    pub fn kind_of(&self, a: ActionId) -> Option<ActionKind> {
        if self.inputs.binary_search(&a).is_ok() {
            Some(ActionKind::Input)
        } else if self.outputs.binary_search(&a).is_ok() {
            Some(ActionKind::Output)
        } else if self.internals.binary_search(&a).is_ok() {
            Some(ActionKind::Internal)
        } else {
            None
        }
    }

    /// Whether `a` is a *visible* action (input or output) of this automaton.
    ///
    /// Visible actions are the ones that synchronize in parallel composition.
    pub fn is_visible(&self, a: ActionId) -> bool {
        matches!(
            self.kind_of(a),
            Some(ActionKind::Input) | Some(ActionKind::Output)
        )
    }

    /// Whether `a` is urgent (output or internal): urgent actions cannot be
    /// delayed, so an enabled urgent action preempts Markovian transitions
    /// (maximal progress).
    pub fn is_urgent(&self, a: ActionId) -> bool {
        matches!(
            self.kind_of(a),
            Some(ActionKind::Output) | Some(ActionKind::Internal)
        )
    }

    /// Interactive transitions of `s` as `(action, target)` pairs.
    pub fn interactive_from(&self, s: StateId) -> &[(ActionId, StateId)] {
        let s = s as usize;
        &self.inter[self.inter_off[s] as usize..self.inter_off[s + 1] as usize]
    }

    /// Markovian transitions of `s` as `(rate, target)` pairs.
    pub fn markovian_from(&self, s: StateId) -> &[(f64, StateId)] {
        let s = s as usize;
        &self.mark[self.mark_off[s] as usize..self.mark_off[s + 1] as usize]
    }

    /// The Markovian transitions in raw CSR form: the `num_states + 1`
    /// offset array and the flat `(rate, target)` transition array it
    /// indexes. Lets downstream consumers (CTMC extraction) copy the
    /// storage wholesale instead of re-collecting per-state rows.
    pub fn markovian_csr(&self) -> (&[u32], &[(f64, StateId)]) {
        (&self.mark_off, &self.mark)
    }

    /// Transposed adjacency over *all* transitions (interactive and
    /// Markovian alike) in flat CSR form: `preds[off[t]..off[t + 1]]`
    /// lists the sources of every edge into `t`, in ascending source
    /// order. Parallel edges are kept (one entry per transition), which
    /// is what the worklist refiner in the `bisim` crate wants — it marks
    /// predecessors dirty and duplicates are absorbed by the dirty mask.
    pub fn incoming(&self) -> (Vec<u32>, Vec<StateId>) {
        let n = self.num_states();
        let mut off = vec![0u32; n + 1];
        for &(_, t) in &self.inter {
            off[t as usize + 1] += 1;
        }
        for &(_, t) in &self.mark {
            off[t as usize + 1] += 1;
        }
        for i in 0..n {
            off[i + 1] += off[i];
        }
        let mut preds: Vec<StateId> = vec![0; off[n] as usize];
        let mut cursor: Vec<u32> = off[..n].to_vec();
        // Scanning sources in ascending order keeps each target's
        // predecessor slice sorted by source.
        for s in 0..n {
            for &(_, t) in &self.inter[self.inter_off[s] as usize..self.inter_off[s + 1] as usize] {
                preds[cursor[t as usize] as usize] = s as StateId;
                cursor[t as usize] += 1;
            }
            for &(_, t) in &self.mark[self.mark_off[s] as usize..self.mark_off[s + 1] as usize] {
                preds[cursor[t as usize] as usize] = s as StateId;
                cursor[t as usize] += 1;
            }
        }
        (off, preds)
    }

    /// The label of state `s`.
    pub fn label(&self, s: StateId) -> StateLabel {
        self.labels[s as usize]
    }

    /// All state labels.
    pub fn labels(&self) -> &[StateLabel] {
        &self.labels
    }

    /// Whether state `s` has an enabled urgent (output or internal)
    /// transition. Such states are *unstable*: time cannot pass in them.
    pub fn is_unstable(&self, s: StateId) -> bool {
        self.interactive_from(s)
            .iter()
            .any(|&(a, _)| self.is_urgent(a))
    }

    /// Total exit rate of state `s` (sum of Markovian rates).
    pub fn exit_rate(&self, s: StateId) -> f64 {
        self.markovian_from(s).iter().map(|&(r, _)| r).sum()
    }

    /// Total number of interactive transitions.
    pub fn num_interactive(&self) -> usize {
        self.inter.len()
    }

    /// Total number of Markovian transitions.
    pub fn num_markovian(&self) -> usize {
        self.mark.len()
    }

    /// Total number of transitions (interactive + Markovian).
    pub fn num_transitions(&self) -> usize {
        self.num_interactive() + self.num_markovian()
    }

    /// Iterates over all interactive transitions as `(src, action, tgt)`.
    pub fn iter_interactive(&self) -> impl Iterator<Item = (StateId, ActionId, StateId)> + '_ {
        (0..self.num_states() as StateId).flat_map(move |s| {
            self.interactive_from(s)
                .iter()
                .map(move |&(a, t)| (s, a, t))
        })
    }

    /// Iterates over all Markovian transitions as `(src, rate, tgt)`.
    pub fn iter_markovian(&self) -> impl Iterator<Item = (StateId, f64, StateId)> + '_ {
        (0..self.num_states() as StateId)
            .flat_map(move |s| self.markovian_from(s).iter().map(move |&(r, t)| (s, r, t)))
    }

    /// Returns a copy with the given state labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != self.num_states()`.
    pub fn with_labels(mut self, labels: Vec<StateLabel>) -> Self {
        assert_eq!(labels.len(), self.num_states(), "label count mismatch");
        self.labels = labels;
        self
    }

    /// Keeps only the interactive transitions for which `keep` returns
    /// `true`, compacting the CSR storage in place (no reallocation).
    pub(crate) fn retain_interactive(
        &mut self,
        mut keep: impl FnMut(StateId, ActionId, StateId) -> bool,
    ) {
        let n = self.num_states();
        let mut w = 0usize;
        let mut r = 0usize;
        for s in 0..n {
            let end = self.inter_off[s + 1] as usize;
            self.inter_off[s] = w as u32;
            while r < end {
                let (a, t) = self.inter[r];
                if keep(s as StateId, a, t) {
                    self.inter[w] = (a, t);
                    w += 1;
                }
                r += 1;
            }
        }
        self.inter_off[n] = w as u32;
        self.inter.truncate(w);
    }

    /// Drops every Markovian transition of the states for which `drop_row`
    /// returns `true`, compacting in place. Returns the number of
    /// transitions removed.
    pub(crate) fn clear_markovian_rows(
        &mut self,
        mut drop_row: impl FnMut(StateId) -> bool,
    ) -> usize {
        let n = self.num_states();
        let before = self.mark.len();
        let mut w = 0usize;
        let mut r = 0usize;
        for s in 0..n {
            let end = self.mark_off[s + 1] as usize;
            self.mark_off[s] = w as u32;
            if drop_row(s as StateId) {
                r = end;
            } else {
                while r < end {
                    self.mark[w] = self.mark[r];
                    if let Some(forms) = &mut self.forms {
                        forms.swap(w, r);
                    }
                    w += 1;
                    r += 1;
                }
            }
        }
        self.mark_off[n] = w as u32;
        self.mark.truncate(w);
        if let Some(forms) = &mut self.forms {
            forms.truncate(w);
        }
        before - w
    }

    /// Normalizes transition storage in place: sorts each state's rows,
    /// deduplicates identical interactive transitions, merges parallel
    /// Markovian transitions to the same target by summing their rates,
    /// and drops Markovian self-loops (an exponential race against oneself
    /// is unobservable — CTMC generators cancel self-loops).
    pub fn normalize(&mut self) {
        let n = self.num_states();
        // Interactive: per-row sort + dedup, compacted left-to-right (the
        // write cursor never overtakes the read cursor, so this is safe
        // in place).
        let mut w = 0usize;
        for s in 0..n {
            let (start, end) = (self.inter_off[s] as usize, self.inter_off[s + 1] as usize);
            self.inter[start..end].sort_unstable();
            self.inter_off[s] = w as u32;
            let row_start = w;
            for r in start..end {
                let item = self.inter[r];
                if w == row_start || self.inter[w - 1] != item {
                    self.inter[w] = item;
                    w += 1;
                }
            }
        }
        self.inter_off[n] = w as u32;
        self.inter.truncate(w);

        // Markovian: per-row sort by target, drop self-loops, merge
        // parallel edges.
        if self.forms.is_some() {
            self.normalize_markovian_with_forms();
            return;
        }
        let mut w = 0usize;
        for s in 0..n {
            let (start, end) = (self.mark_off[s] as usize, self.mark_off[s + 1] as usize);
            self.mark[start..end].sort_unstable_by(|a, b| a.1.cmp(&b.1).then(a.0.total_cmp(&b.0)));
            self.mark_off[s] = w as u32;
            let row_start = w;
            for r in start..end {
                let (rate, t) = self.mark[r];
                if t as usize == s {
                    continue;
                }
                if w > row_start && self.mark[w - 1].1 == t {
                    self.mark[w - 1].0 += rate;
                } else {
                    self.mark[w] = (rate, t);
                    w += 1;
                }
            }
        }
        self.mark_off[n] = w as u32;
        self.mark.truncate(w);
    }

    /// The Markovian half of [`IoImc::normalize`] when rate forms are
    /// attached: same sort key, self-loop drop and merge rule as the
    /// formless path (tie order cannot change rate sums — tied entries
    /// have bitwise-equal rates — so the numeric result is identical),
    /// with the forms permuted and concatenated alongside. The sort is
    /// made fully deterministic by an index tie-break so the form
    /// concatenation order is reproducible.
    fn normalize_markovian_with_forms(&mut self) {
        let n = self.num_states();
        let mut forms = self.forms.take().expect("checked by caller");
        let mut new_mark: Vec<(f64, StateId)> = Vec::with_capacity(self.mark.len());
        let mut new_forms: Vec<RateForm> = Vec::with_capacity(forms.len());
        let mut idx: Vec<u32> = Vec::new();
        for s in 0..n {
            let (start, end) = (self.mark_off[s] as usize, self.mark_off[s + 1] as usize);
            idx.clear();
            idx.extend(start as u32..end as u32);
            idx.sort_unstable_by(|&a, &b| {
                let (ra, ta) = self.mark[a as usize];
                let (rb, tb) = self.mark[b as usize];
                ta.cmp(&tb).then(ra.total_cmp(&rb)).then(a.cmp(&b))
            });
            self.mark_off[s] = new_mark.len() as u32;
            let row_start = new_mark.len();
            for &i in &idx {
                let (rate, t) = self.mark[i as usize];
                if t as usize == s {
                    continue;
                }
                if new_mark.len() > row_start && new_mark.last().expect("nonempty row").1 == t {
                    new_mark.last_mut().expect("nonempty row").0 += rate;
                    new_forms
                        .last_mut()
                        .expect("nonempty row")
                        .absorb(&forms[i as usize]);
                } else {
                    new_mark.push((rate, t));
                    new_forms.push(std::mem::take(&mut forms[i as usize]));
                }
            }
        }
        self.mark_off[n] = new_mark.len() as u32;
        self.mark = new_mark;
        self.forms = Some(new_forms);
    }
}

/// Flattens per-state transition lists into a CSR (offsets, data) pair.
fn flatten<T: Copy>(rows: Vec<Vec<T>>) -> (Vec<u32>, Vec<T>) {
    let total: usize = rows.iter().map(Vec::len).sum();
    let mut off = Vec::with_capacity(rows.len() + 1);
    let mut data = Vec::with_capacity(total);
    off.push(0u32);
    for row in rows {
        data.extend_from_slice(&row);
        off.push(u32::try_from(data.len()).expect("more than u32::MAX transitions"));
    }
    (off, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IoImcBuilder;
    use crate::Alphabet;

    fn two_state() -> (Alphabet, IoImc) {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let mut bld = IoImcBuilder::new();
        bld.set_inputs([a]).set_outputs([b]);
        let s0 = bld.add_state();
        let s1 = bld.add_state();
        bld.interactive(s0, a, s1)
            .interactive(s1, b, s0)
            .markovian(s0, 2.5, s1);
        let imc = bld.complete_inputs().build().unwrap();
        (ab, imc)
    }

    #[test]
    fn signature_queries() {
        let (mut ab, imc) = two_state();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let c = ab.intern("c");
        assert_eq!(imc.kind_of(a), Some(ActionKind::Input));
        assert_eq!(imc.kind_of(b), Some(ActionKind::Output));
        assert_eq!(imc.kind_of(c), None);
        assert!(imc.is_visible(a) && imc.is_visible(b));
        assert!(imc.is_urgent(b) && !imc.is_urgent(a));
    }

    #[test]
    fn stability_and_rates() {
        let (_, imc) = two_state();
        assert!(!imc.is_unstable(0)); // only input + markovian enabled
        assert!(imc.is_unstable(1)); // output b! enabled
        assert!((imc.exit_rate(0) - 2.5).abs() < 1e-12);
        assert_eq!(imc.exit_rate(1), 0.0);
    }

    #[test]
    fn counts_and_iterators() {
        let (_, imc) = two_state();
        // a-self-loop added on s1 by complete_inputs
        assert_eq!(imc.num_interactive(), 3);
        assert_eq!(imc.num_markovian(), 1);
        assert_eq!(imc.num_transitions(), 4);
        assert_eq!(imc.iter_interactive().count(), 3);
        assert_eq!(imc.iter_markovian().count(), 1);
    }

    #[test]
    fn normalize_merges_parallel_markovian() {
        let mut ab = Alphabet::new();
        let _ = ab.intern("x");
        let mut bld = IoImcBuilder::new();
        let s0 = bld.add_state();
        let s1 = bld.add_state();
        bld.markovian(s0, 1.0, s1).markovian(s0, 2.0, s1);
        let mut imc = bld.build().unwrap();
        imc.normalize();
        assert_eq!(imc.markovian_from(0), &[(3.0, 1)]);
    }

    #[test]
    fn normalize_is_row_local() {
        // Three states with interleaved duplicates and self-loops; rows
        // must stay independent when the CSR arrays are compacted.
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let mut bld = IoImcBuilder::new();
        bld.set_outputs([a]);
        let s0 = bld.add_state();
        let s1 = bld.add_state();
        let s2 = bld.add_state();
        bld.interactive(s0, a, s2)
            .interactive(s0, a, s1)
            .interactive(s0, a, s1)
            .interactive(s1, a, s2)
            .markovian(s1, 1.0, s1) // self-loop, cancelled
            .markovian(s1, 2.0, s2)
            .markovian(s2, 1.5, s0)
            .markovian(s2, 0.5, s0);
        let imc = bld.build().unwrap(); // build() normalizes
        assert_eq!(imc.interactive_from(0), &[(a, 1), (a, 2)]);
        assert_eq!(imc.interactive_from(1), &[(a, 2)]);
        assert_eq!(imc.markovian_from(1), &[(2.0, 2)]);
        assert_eq!(imc.markovian_from(2), &[(2.0, 0)]);
    }

    #[test]
    fn retain_and_clear_compact_csr() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let mut bld = IoImcBuilder::new();
        bld.set_outputs([a, b]);
        let s0 = bld.add_state();
        let s1 = bld.add_state();
        bld.interactive(s0, a, s1)
            .interactive(s0, b, s1)
            .interactive(s1, a, s0)
            .markovian(s0, 1.0, s1)
            .markovian(s1, 2.0, s0);
        let mut imc = bld.build().unwrap();
        imc.retain_interactive(|_, act, _| act != a);
        assert_eq!(imc.interactive_from(0), &[(b, 1)]);
        assert!(imc.interactive_from(1).is_empty());
        let removed = imc.clear_markovian_rows(|s| s == 1);
        assert_eq!(removed, 1);
        assert_eq!(imc.markovian_from(0), &[(1.0, 1)]);
        assert!(imc.markovian_from(1).is_empty());
    }

    #[test]
    fn normalize_keeps_forms_aligned() {
        use crate::form::RateForm;
        let mut bld = IoImcBuilder::new();
        let s0 = bld.add_state();
        let s1 = bld.add_state();
        let s2 = bld.add_state();
        // Two parallel edges to s2 (merged), one self-loop (dropped), one
        // plain edge to s1 (constant form synthesized).
        bld.markovian_formed(s0, 0.6, s2, RateForm::scaled(0, 2.0))
            .markovian_formed(s0, 0.3, s2, RateForm::scaled(1, 1.0))
            .markovian_formed(s0, 1.0, s0, RateForm::scaled(0, 1.0))
            .markovian(s0, 4.0, s1);
        let imc = bld.build().unwrap();
        assert_eq!(imc.markovian_from(0), &[(4.0, 1), (0.6 + 0.3, 2)]);
        let forms = imc.markovian_forms_from(0).unwrap();
        assert_eq!(forms[0], RateForm::constant(4.0));
        assert_eq!(forms[1].atoms, vec![(1, 1.0), (0, 2.0)]);
        // Evaluating at the base point reproduces the merged rates.
        assert_eq!(forms[1].eval(&[0.3, 0.3]), 0.3 + 0.6);
        assert!(imc.markovian_forms_from(1).unwrap().is_empty());
    }

    #[test]
    fn with_labels_replaces() {
        let (_, imc) = two_state();
        let relabeled = imc.with_labels(vec![0, 1]);
        assert_eq!(relabeled.label(1), 1);
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn with_labels_wrong_len_panics() {
        let (_, imc) = two_state();
        let _ = imc.with_labels(vec![0]);
    }
}
