//! The I/O-IMC automaton type.

use crate::alphabet::ActionId;

/// Index of a state in an [`IoImc`].
pub type StateId = u32;

/// A state label: a bitmask of atomic propositions.
///
/// Arcade uses bit 0 for "system down" (set by the observer component);
/// other bits are free for user-defined propositions. Labels of composed
/// states are the bitwise OR of the component labels.
pub type StateLabel = u64;

/// The three kinds of interactive actions of an I/O-IMC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionKind {
    /// `a?` — controlled by the environment; input-enabled in every state.
    Input,
    /// `a!` — controlled by the automaton; cannot be delayed (urgent).
    Output,
    /// `a;` — invisible; cannot be delayed (urgent).
    Internal,
}

/// An Input/Output Interactive Markov Chain.
///
/// Immutable after construction (see [`crate::builder::IoImcBuilder`]); the
/// transformation functions in this crate ([`crate::compose::parallel`],
/// [`crate::hide::hide_outputs`], …) return new automata.
///
/// Invariants (checked by [`crate::validate::validate`]):
///
/// * the input, output and internal action sets are disjoint and sorted,
/// * every transition's action belongs to the signature,
/// * every state has at least one transition for every input action
///   (input-enabledness),
/// * all Markovian rates are finite and strictly positive,
/// * all transition targets are valid states.
#[derive(Debug, Clone, PartialEq)]
pub struct IoImc {
    pub(crate) initial: StateId,
    pub(crate) inputs: Vec<ActionId>,
    pub(crate) outputs: Vec<ActionId>,
    pub(crate) internals: Vec<ActionId>,
    /// Per-state interactive transitions `(action, target)`, sorted.
    pub(crate) interactive: Vec<Vec<(ActionId, StateId)>>,
    /// Per-state Markovian transitions `(rate, target)`.
    pub(crate) markovian: Vec<Vec<(f64, StateId)>>,
    pub(crate) labels: Vec<StateLabel>,
}

impl IoImc {
    /// Assembles an I/O-IMC from parts without validation.
    ///
    /// Prefer [`crate::builder::IoImcBuilder`]; this is the escape hatch used
    /// by the transformation passes. Signature sets must be sorted and
    /// disjoint and `interactive`, `markovian`, `labels` must have one entry
    /// per state.
    pub fn from_parts_unchecked(
        initial: StateId,
        inputs: Vec<ActionId>,
        outputs: Vec<ActionId>,
        internals: Vec<ActionId>,
        interactive: Vec<Vec<(ActionId, StateId)>>,
        markovian: Vec<Vec<(f64, StateId)>>,
        labels: Vec<StateLabel>,
    ) -> Self {
        debug_assert_eq!(interactive.len(), markovian.len());
        debug_assert_eq!(interactive.len(), labels.len());
        Self {
            initial,
            inputs,
            outputs,
            internals,
            interactive,
            markovian,
            labels,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.interactive.len()
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Sorted input action set.
    pub fn inputs(&self) -> &[ActionId] {
        &self.inputs
    }

    /// Sorted output action set.
    pub fn outputs(&self) -> &[ActionId] {
        &self.outputs
    }

    /// Sorted internal action set.
    pub fn internals(&self) -> &[ActionId] {
        &self.internals
    }

    /// The kind of `a` in this automaton's signature, if present.
    pub fn kind_of(&self, a: ActionId) -> Option<ActionKind> {
        if self.inputs.binary_search(&a).is_ok() {
            Some(ActionKind::Input)
        } else if self.outputs.binary_search(&a).is_ok() {
            Some(ActionKind::Output)
        } else if self.internals.binary_search(&a).is_ok() {
            Some(ActionKind::Internal)
        } else {
            None
        }
    }

    /// Whether `a` is a *visible* action (input or output) of this automaton.
    ///
    /// Visible actions are the ones that synchronize in parallel composition.
    pub fn is_visible(&self, a: ActionId) -> bool {
        matches!(
            self.kind_of(a),
            Some(ActionKind::Input) | Some(ActionKind::Output)
        )
    }

    /// Whether `a` is urgent (output or internal): urgent actions cannot be
    /// delayed, so an enabled urgent action preempts Markovian transitions
    /// (maximal progress).
    pub fn is_urgent(&self, a: ActionId) -> bool {
        matches!(
            self.kind_of(a),
            Some(ActionKind::Output) | Some(ActionKind::Internal)
        )
    }

    /// Interactive transitions of `s` as `(action, target)` pairs.
    pub fn interactive_from(&self, s: StateId) -> &[(ActionId, StateId)] {
        &self.interactive[s as usize]
    }

    /// Markovian transitions of `s` as `(rate, target)` pairs.
    pub fn markovian_from(&self, s: StateId) -> &[(f64, StateId)] {
        &self.markovian[s as usize]
    }

    /// The label of state `s`.
    pub fn label(&self, s: StateId) -> StateLabel {
        self.labels[s as usize]
    }

    /// All state labels.
    pub fn labels(&self) -> &[StateLabel] {
        &self.labels
    }

    /// Whether state `s` has an enabled urgent (output or internal)
    /// transition. Such states are *unstable*: time cannot pass in them.
    pub fn is_unstable(&self, s: StateId) -> bool {
        self.interactive[s as usize]
            .iter()
            .any(|&(a, _)| self.is_urgent(a))
    }

    /// Total exit rate of state `s` (sum of Markovian rates).
    pub fn exit_rate(&self, s: StateId) -> f64 {
        self.markovian[s as usize].iter().map(|&(r, _)| r).sum()
    }

    /// Total number of interactive transitions.
    pub fn num_interactive(&self) -> usize {
        self.interactive.iter().map(Vec::len).sum()
    }

    /// Total number of Markovian transitions.
    pub fn num_markovian(&self) -> usize {
        self.markovian.iter().map(Vec::len).sum()
    }

    /// Total number of transitions (interactive + Markovian).
    pub fn num_transitions(&self) -> usize {
        self.num_interactive() + self.num_markovian()
    }

    /// Iterates over all interactive transitions as `(src, action, tgt)`.
    pub fn iter_interactive(&self) -> impl Iterator<Item = (StateId, ActionId, StateId)> + '_ {
        self.interactive
            .iter()
            .enumerate()
            .flat_map(|(s, ts)| ts.iter().map(move |&(a, t)| (s as StateId, a, t)))
    }

    /// Iterates over all Markovian transitions as `(src, rate, tgt)`.
    pub fn iter_markovian(&self) -> impl Iterator<Item = (StateId, f64, StateId)> + '_ {
        self.markovian
            .iter()
            .enumerate()
            .flat_map(|(s, ts)| ts.iter().map(move |&(r, t)| (s as StateId, r, t)))
    }

    /// Returns a copy with the given state labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != self.num_states()`.
    pub fn with_labels(mut self, labels: Vec<StateLabel>) -> Self {
        assert_eq!(labels.len(), self.num_states(), "label count mismatch");
        self.labels = labels;
        self
    }

    /// Normalizes transition storage: deduplicates identical interactive
    /// transitions, merges parallel Markovian transitions to the same
    /// target by summing their rates, and drops Markovian self-loops
    /// (an exponential race against oneself is unobservable — CTMC
    /// generators cancel self-loops).
    pub fn normalize(&mut self) {
        for ts in &mut self.interactive {
            ts.sort_unstable();
            ts.dedup();
        }
        for (s, ts) in self.markovian.iter_mut().enumerate() {
            ts.retain(|&(_, t)| t as usize != s);
            ts.sort_unstable_by(|a, b| a.1.cmp(&b.1).then(a.0.total_cmp(&b.0)));
            let mut out: Vec<(f64, StateId)> = Vec::with_capacity(ts.len());
            for &(r, t) in ts.iter() {
                match out.last_mut() {
                    Some(last) if last.1 == t => last.0 += r,
                    _ => out.push((r, t)),
                }
            }
            *ts = out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IoImcBuilder;
    use crate::Alphabet;

    fn two_state() -> (Alphabet, IoImc) {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let mut bld = IoImcBuilder::new();
        bld.set_inputs([a]).set_outputs([b]);
        let s0 = bld.add_state();
        let s1 = bld.add_state();
        bld.interactive(s0, a, s1)
            .interactive(s1, b, s0)
            .markovian(s0, 2.5, s1);
        let imc = bld.complete_inputs().build().unwrap();
        (ab, imc)
    }

    #[test]
    fn signature_queries() {
        let (mut ab, imc) = two_state();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let c = ab.intern("c");
        assert_eq!(imc.kind_of(a), Some(ActionKind::Input));
        assert_eq!(imc.kind_of(b), Some(ActionKind::Output));
        assert_eq!(imc.kind_of(c), None);
        assert!(imc.is_visible(a) && imc.is_visible(b));
        assert!(imc.is_urgent(b) && !imc.is_urgent(a));
    }

    #[test]
    fn stability_and_rates() {
        let (_, imc) = two_state();
        assert!(!imc.is_unstable(0)); // only input + markovian enabled
        assert!(imc.is_unstable(1)); // output b! enabled
        assert!((imc.exit_rate(0) - 2.5).abs() < 1e-12);
        assert_eq!(imc.exit_rate(1), 0.0);
    }

    #[test]
    fn counts_and_iterators() {
        let (_, imc) = two_state();
        // a-self-loop added on s1 by complete_inputs
        assert_eq!(imc.num_interactive(), 3);
        assert_eq!(imc.num_markovian(), 1);
        assert_eq!(imc.num_transitions(), 4);
        assert_eq!(imc.iter_interactive().count(), 3);
        assert_eq!(imc.iter_markovian().count(), 1);
    }

    #[test]
    fn normalize_merges_parallel_markovian() {
        let mut ab = Alphabet::new();
        let _ = ab.intern("x");
        let mut bld = IoImcBuilder::new();
        let s0 = bld.add_state();
        let s1 = bld.add_state();
        bld.markovian(s0, 1.0, s1).markovian(s0, 2.0, s1);
        let mut imc = bld.build().unwrap();
        imc.normalize();
        assert_eq!(imc.markovian_from(0), &[(3.0, 1)]);
    }

    #[test]
    fn with_labels_replaces() {
        let (_, imc) = two_state();
        let relabeled = imc.with_labels(vec![0, 1]);
        assert_eq!(relabeled.label(1), 1);
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn with_labels_wrong_len_panics() {
        let (_, imc) = two_state();
        let _ = imc.with_labels(vec![0]);
    }
}
