//! Integration tests of the paper's proposed extensions: the Priority-AND
//! gate (footnote 8), the SMU failover time (§3.6), and the CSL layer
//! (§6) — each checked against closed forms through the full pipeline.

use arcade::parser::parse_system;
use arcade::prelude::*;
use arcade::printer::to_arcade_text;
use ctmc::csl::StateFormula;

/// PAND without repair has a closed form: for exponential components
/// F (rate f) and C (rate c),
/// `P(T_F < T_C ≤ t) = (1 - e^{-ct}) - c/(c+f) (1 - e^{-(c+f)t})`.
#[test]
fn pand_no_repair_closed_form() {
    let (f, c) = (0.004, 0.001);
    let mut def = SystemDef::new("pand");
    def.add_component(BcDef::new("fan", Dist::exp(f), Dist::exp(1.0)));
    def.add_component(BcDef::new("cpu", Dist::exp(c), Dist::exp(1.0)));
    def.set_system_down(Expr::pand([Expr::down("fan"), Expr::down("cpu")]));
    let report = Analysis::new(&def).unwrap().run().unwrap();
    let t = 400.0;
    let got = report.unreliability(t);
    let expected = (1.0 - (-c * t).exp()) - c / (c + f) * (1.0 - (-(c + f) * t).exp());
    assert!(
        (got - expected).abs() < 1e-10,
        "PAND unreliability {got} vs closed form {expected}"
    );
    // the AND variant is strictly more likely
    let mut and_def = def.clone();
    and_def.set_system_down(Expr::and([Expr::down("fan"), Expr::down("cpu")]));
    let and_report = Analysis::new(&and_def).unwrap().run().unwrap();
    assert!(and_report.unreliability(t) > got);
}

/// PAND over three components: the probability that three exponentials
/// fall in a fixed order by t=∞ is λ1/(λ1+λ2+λ3) · λ2/(λ2+λ3).
#[test]
fn pand_three_way_ordering_probability() {
    let rates = [0.03, 0.02, 0.01];
    let mut def = SystemDef::new("pand3");
    for (i, &r) in rates.iter().enumerate() {
        def.add_component(BcDef::new(format!("c{i}"), Dist::exp(r), Dist::exp(1.0)));
    }
    def.set_system_down(Expr::pand([
        Expr::down("c0"),
        Expr::down("c1"),
        Expr::down("c2"),
    ]));
    let report = Analysis::new(&def).unwrap().run().unwrap();
    // by t -> infinity every component has failed; the PAND fired iff the
    // order was c0 < c1 < c2
    let t = 5000.0;
    let got = report.unreliability(t);
    let total: f64 = rates.iter().sum();
    let expected = rates[0] / total * (rates[1] / (rates[1] + rates[2]));
    assert!(
        (got - expected).abs() < 1e-6,
        "3-way PAND {got} vs order probability {expected}"
    );
}

/// The failover SMU converges to the instantaneous SMU as the failover
/// rate grows, monotonically.
#[test]
fn failover_converges_monotonically() {
    let build = |failover: Option<Dist>| {
        let mut def = SystemDef::new("fo");
        def.add_component(BcDef::new("pp", Dist::exp(0.02), Dist::exp(1.0)));
        def.add_component(
            BcDef::new("ps", Dist::exp(0.02), Dist::exp(1.0))
                .with_om_group(OmGroup::ActiveInactive)
                .with_ttf([Dist::Never, Dist::exp(0.02)]),
        );
        def.add_repair_unit(RuDef::new("r", ["pp", "ps"], RepairStrategy::Fcfs));
        let mut smu = SmuDef::new("m", "pp", ["ps"]);
        if let Some(d) = failover {
            smu = smu.with_failover(d);
        }
        def.add_smu(smu);
        def.set_system_down(Expr::and([Expr::down("pp"), Expr::down("ps")]));
        Analysis::new(&def).unwrap().run().unwrap()
    };
    let t = 200.0;
    let instant = build(None).unreliability_with_repair(t);
    let mut last = build(Some(Dist::exp(0.5))).unreliability_with_repair(t);
    for rate in [2.0, 10.0, 100.0] {
        let cur = build(Some(Dist::exp(rate))).unreliability_with_repair(t);
        assert!(
            cur >= last - 1e-12,
            "cold-spare exposure grows with failover rate: {cur} < {last}"
        );
        last = cur;
    }
    assert!((last - instant).abs() < 1e-3, "{last} vs instant {instant}");
}

/// CSL layer: nested propositions over the final CTMC behave consistently
/// with the classic measures on a repairable pair.
#[test]
fn csl_consistency_on_repairable_pair() {
    let mut def = SystemDef::new("csl");
    def.add_component(BcDef::new("a", Dist::exp(0.05), Dist::exp(1.0)));
    def.add_component(BcDef::new("b", Dist::exp(0.05), Dist::exp(1.0)));
    def.add_repair_unit(RuDef::new("ra", ["a"], RepairStrategy::Dedicated));
    def.add_repair_unit(RuDef::new("rb", ["b"], RepairStrategy::Dedicated));
    def.set_system_down(Expr::and([Expr::down("a"), Expr::down("b")]));
    let report = Analysis::new(&def).unwrap().run().unwrap();
    let t = 30.0;
    let up = StateFormula::up();
    let down = StateFormula::down();
    // until from an up state == first passage
    let q = report.until_bounded(&up, &down, t);
    assert!((q - report.unreliability_with_repair(t)).abs() < 1e-12);
    // interval availability lies between the point availability at t and 1
    let ia = report.interval_availability(t);
    assert!(ia <= 1.0);
    assert!(ia >= report.point_availability(t) - 1e-9);
}

/// PAND survives the textual round trip and the parser rejects misuse.
#[test]
fn pand_text_round_trip_and_guards() {
    let text = "
COMPONENT: fan
TIME-TO-FAILURE: exp(0.004)

COMPONENT: cpu
TIME-TO-FAILURE: exp(0.001)

SYSTEM DOWN: PAND(fan.down, cpu.down)
";
    let def = parse_system(text).unwrap();
    assert!(def.system_down.as_ref().unwrap().contains_pand());
    let printed = to_arcade_text(&def);
    let again = parse_system(&printed).unwrap();
    assert_eq!(again.system_down, def.system_down);

    // the simulator refuses PAND (order-dependent, stateless evaluation)
    let err = arcade::sim::simulate_unreliability(&def, 10.0, 100, 1, false);
    assert!(err.is_err());
    // the analytic evaluator refuses it too
    assert!(arcade::analytic::static_unreliability(&def, 10.0).is_err());
    // PAND in a trigger expression is rejected at validation
    let mut bad = def.clone();
    bad.components[1] = BcDef::new("cpu", Dist::exp(0.001), Dist::exp(1.0)).with_df(
        Expr::pand([Expr::down("fan"), Expr::down("fan")]),
        Dist::exp(1.0),
    );
    assert!(arcade::model::validate(&bad).is_err());
}
