//! Regression tests pinning the reproduced paper numbers, so that
//! `cargo test` itself guards the headline results (the `exp_*` binaries
//! regenerate and print them).

use arcade::cases::dds::{dds, FIVE_WEEKS_H};
use arcade::cases::rcs::rcs;
use arcade::engine::{aggregate, EngineOptions};
use arcade::model::SystemModel;
use arcade::modular::modular_analysis;
use arcade::query::{Measure, Session};

/// Table 1: A = 0.999997, R(5 weeks) = 0.402018 (modular analysis —
/// fast enough for the debug-profile test suite).
#[test]
fn table1_dds_measures() {
    let m = modular_analysis(&dds(), &EngineOptions::new()).expect("DDS analysis");
    let a = m.steady_state_availability();
    let r = m.reliability(FIVE_WEEKS_H);
    assert!(
        (a - 0.999997).abs() < 5e-7,
        "availability {a} drifted from the paper's 0.999997"
    );
    assert!(
        (r - 0.402018).abs() < 5e-6,
        "reliability {r} drifted from the paper's 0.402018"
    );
}

/// Numerics regression pin: the DDS measures computed on the monolithic
/// 2,100-state chain, captured **before** the CSR/`SolverOptions` rewrite
/// of the `ctmc` crate. Every kernel that changed representation (steady
/// state, uniformization, hitting times) must reproduce these to ≤1e-10
/// relative.
#[test]
fn dds_measures_match_pre_csr_refactor_values() {
    let session = Session::new(&dds()).expect("DDS session");
    let mut measures = vec![
        Measure::SteadyStateAvailability,
        Measure::SteadyStateUnavailability,
        Measure::Mttf,
        Measure::UnreliabilityWithRepair(840.0),
    ];
    for k in 1..=10u32 {
        measures.push(Measure::Unreliability(84.0 * f64::from(k)));
    }
    let expected = [
        0.9999965021714378,
        3.497828562245593e-6,
        286089.3108182308,
        0.0029283693822186605,
        0.011842306106247698,
        0.0449985245623829,
        0.09537395877785343,
        0.15854893761332614,
        0.23018712382599893,
        0.30633161625759064,
        0.383590668804612,
        0.4592271216571215,
        0.5311717758903122,
        0.5979824289215058,
    ];
    let values = session.evaluate(&measures).expect("batch evaluates");
    for ((m, &got), &want) in measures.iter().zip(&values).zip(&expected) {
        assert!(
            (got - want).abs() <= 1e-10 * want.abs(),
            "{m:?}: {got:.17e} drifted from pre-refactor {want:.17e}"
        );
    }
}

/// The same DDS pins, re-asserted per transient engine: the default
/// adaptive windowed engine and the exact global-Λ full-sweep engine
/// must both reproduce the pinned numbers to ≤ 1e-10 relative — the
/// adaptive engine's support truncation (default budget 1e-14 per grid
/// segment) is invisible at this precision. This is the paper-numbers
/// leg of the adaptive-engine regression gate (`exp_scaling` carries the
/// full-distribution leg).
#[test]
fn dds_measures_pinned_on_both_transient_engines() {
    let measures = [
        Measure::UnreliabilityWithRepair(840.0),
        Measure::Unreliability(84.0),
        Measure::Unreliability(420.0),
        Measure::Unreliability(840.0),
        Measure::PointUnavailability(840.0),
    ];
    let mut exact_opts = EngineOptions::new();
    exact_opts.solver.transient.adaptive = false;
    let adaptive = Session::new(&dds()).expect("DDS session");
    let exact = Session::new(&dds())
        .expect("DDS session")
        .with_options(exact_opts);
    let a = adaptive.evaluate(&measures).expect("adaptive batch");
    let e = exact.evaluate(&measures).expect("exact batch");
    for ((m, &got), &want) in measures.iter().zip(&a).zip(&e) {
        assert!(
            (got - want).abs() <= 1e-10 * want.abs().max(1e-300),
            "{m:?}: adaptive {got:.17e} vs exact {want:.17e}"
        );
    }
}

/// §5.1.2: the full monolithic aggregation of the DDS yields exactly the
/// paper's 2,100-state / 15,120-transition CTMC.
#[test]
fn dds_final_ctmc_is_exactly_the_papers() {
    let model = SystemModel::build(&dds()).expect("DDS model");
    let agg = aggregate(&model, &EngineOptions::new()).expect("aggregation");
    assert_eq!(agg.ctmc_stats.states, 2_100, "CTMC states");
    assert_eq!(agg.ctmc_stats.transitions(), 15_120, "CTMC transitions");
    // the peak stays in the paper's ballpark (they report 6,522)
    assert!(
        agg.largest_intermediate.states < 50_000,
        "peak {} states — the hierarchical plan regressed",
        agg.largest_intermediate.states
    );
}

/// §5.2.2: the RCS modularizes into the paper's two subsystems and the
/// 50-hour measures stay within the inventory-uncertainty band
/// (paper: 6.52100e-10 unavailability, 5.29242e-9 unreliability).
#[test]
fn rcs_measures_within_inventory_band() {
    let m = modular_analysis(&rcs(), &EngineOptions::new()).expect("RCS analysis");
    assert_eq!(m.modules.len(), 2, "pump + heat-exchanger subsystems");
    let ua = m.point_unavailability(50.0);
    let ur = m.unreliability_with_repair(50.0);
    let ratio_a = ua / 6.52100e-10;
    let ratio_r = ur / 5.29242e-9;
    assert!(
        (0.5..2.0).contains(&ratio_a),
        "unavailability {ua} left the band (x{ratio_a:.2})"
    );
    assert!(
        (0.5..2.0).contains(&ratio_r),
        "unreliability {ur} left the band (x{ratio_r:.2})"
    );
    // the two measures must drift together (inventory, not semantics)
    assert!(
        (ratio_a - ratio_r).abs() < 0.05,
        "measures drifted apart: x{ratio_a:.2} vs x{ratio_r:.2}"
    );
}
