//! End-to-end integration tests spanning all four crates: model
//! definitions go through elaboration, composition, reduction, CTMC
//! extraction and measure computation, and the results are checked against
//! closed forms and against the independent Monte-Carlo simulator.

use arcade::analytic;
use arcade::engine::{aggregate, EngineOptions};
use arcade::model::SystemModel;
use arcade::prelude::*;
use arcade::sim;
use bisim::pipeline::Strategy;
use ctmc::measures;

/// k-out-of-n:G system of identical repairable components with dedicated
/// repair: compare against the closed-form independent-component answer.
#[test]
fn k_of_n_availability_closed_form() {
    let (lambda, mu) = (0.01, 1.0);
    let n = 4;
    let k_fail = 2; // system down when >= 2 of 4 are down
    let mut def = SystemDef::new("koon");
    let names: Vec<String> = (0..n).map(|i| format!("u{i}")).collect();
    for name in &names {
        def.add_component(BcDef::new(name, Dist::exp(lambda), Dist::exp(mu)));
        def.add_repair_unit(RuDef::new(
            format!("{name}.rep"),
            [name.clone()],
            RepairStrategy::Dedicated,
        ));
    }
    def.set_system_down(Expr::k_of_n(
        k_fail,
        names.iter().map(|n| Expr::down(n.clone())),
    ));
    let report = Analysis::new(&def).unwrap().run().unwrap();
    // closed form: each unit independently down with prob u = λ/(λ+µ)
    let u = lambda / (lambda + mu);
    let p_down: f64 = (k_fail..=n as u32)
        .map(|j| {
            let j = j as i32;
            binom(n, j) * u.powi(j) * (1.0 - u).powi(n - j)
        })
        .sum();
    let got = report.steady_state_unavailability();
    assert!(
        (got - p_down).abs() / p_down < 1e-9,
        "engine {got}, closed form {p_down}"
    );
    // analytic evaluator agrees too
    let a = analytic::independent_unavailability(&def).unwrap();
    assert!((a - p_down).abs() / p_down < 1e-12);
}

fn binom(n: i32, k: i32) -> f64 {
    let mut r = 1.0;
    for i in 0..k {
        r *= f64::from(n - i) / f64::from(i + 1);
    }
    r
}

/// The engine's exact unreliability must fall inside the Monte-Carlo
/// confidence interval for a model exercising SMU + FCFS repair + KofN.
#[test]
fn engine_agrees_with_simulation() {
    let mut def = SystemDef::new("xcheck");
    def.add_component(BcDef::new("pp", Dist::exp(0.02), Dist::exp(0.5)));
    def.add_component(
        BcDef::new("ps", Dist::exp(0.02), Dist::exp(0.5))
            .with_om_group(OmGroup::ActiveInactive)
            .with_ttf([Dist::exp(0.002), Dist::exp(0.02)]),
    );
    def.add_repair_unit(RuDef::new("rep", ["pp", "ps"], RepairStrategy::Fcfs));
    def.add_smu(SmuDef::new("smu", "pp", ["ps"]));
    def.set_system_down(Expr::and([Expr::down("pp"), Expr::down("ps")]));

    let report = Analysis::new(&def).unwrap().run().unwrap();
    let t = 50.0;
    let exact = report.unreliability(t);
    let mc = sim::simulate_unreliability(&def, t, 30_000, 42, false).unwrap();
    assert!(
        mc.contains(exact),
        "exact {exact} outside MC interval {mc:?}"
    );

    let exact_fp = report.unreliability_with_repair(t);
    let mc_fp = sim::simulate_unreliability(&def, t, 100_000, 43, true).unwrap();
    assert!(
        mc_fp.contains(exact_fp),
        "exact {exact_fp} outside MC interval {mc_fp:?}"
    );
}

/// Erlang distributions flow correctly through the whole pipeline:
/// a single Erlang-3 component's no-repair unreliability equals the
/// Erlang CDF.
#[test]
fn erlang_component_end_to_end() {
    let mut def = SystemDef::new("erl");
    def.add_component(BcDef::new("p", Dist::erlang(3, 0.01), Dist::erlang(2, 0.1)));
    def.add_repair_unit(RuDef::new("rep", ["p"], RepairStrategy::Dedicated));
    def.set_system_down(Expr::down("p"));
    let report = Analysis::new(&def).unwrap().run().unwrap();
    let t = 250.0;
    let got = report.unreliability(t);
    let expected = Dist::erlang(3, 0.01).cdf(t);
    assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
    // availability: MTTF = 300, MTTR = 20 -> A = 300/320
    let a = report.steady_state_availability();
    assert!((a - 300.0 / 320.0).abs() < 1e-9, "availability {a}");
}

/// Load sharing (normal/degraded) measurably reduces reliability compared
/// to independent components, and the engine's number matches the
/// 4-state Markov closed form.
#[test]
fn load_sharing_closed_form() {
    let (l, l2) = (0.01, 0.03);
    let mut def = SystemDef::new("ls");
    for (me, other) in [("a", "b"), ("b", "a")] {
        def.add_component(
            BcDef::new(me, Dist::exp(l), Dist::exp(1.0))
                .with_om_group(OmGroup::NormalDegraded(Expr::down(other)))
                .with_ttf([Dist::exp(l), Dist::exp(l2)]),
        );
    }
    def.set_system_down(Expr::and([Expr::down("a"), Expr::down("b")]));
    let report = Analysis::new(&def).unwrap().run().unwrap();
    // closed form: both up -> first failure at 2λ; then survivor fails at λ2:
    // R(t) = e^{-2λt} + 2λ/(λ2-2λ) (e^{-2λt} - e^{-λ2 t}) for λ2 != 2λ
    let t = 40.0;
    let r_closed =
        (-2.0 * l * t).exp() + 2.0 * l / (l2 - 2.0 * l) * ((-2.0 * l * t).exp() - (-l2 * t).exp());
    let got = report.reliability(t);
    assert!((got - r_closed).abs() < 1e-9, "{got} vs {r_closed}");
}

/// Destructive FDEP cascades are visible at the system level.
#[test]
fn df_cascade_end_to_end() {
    let mut def = SystemDef::new("df");
    def.add_component(BcDef::new("fan", Dist::exp(0.05), Dist::exp(1.0)));
    def.add_component(
        BcDef::new("cpu", Dist::exp(0.001), Dist::exp(1.0))
            .with_df(Expr::down("fan"), Dist::exp(1.0)),
    );
    def.add_repair_unit(RuDef::new("rf", ["fan"], RepairStrategy::Dedicated));
    def.add_repair_unit(RuDef::new("rc", ["cpu"], RepairStrategy::Dedicated));
    def.set_system_down(Expr::down("cpu"));
    let report = Analysis::new(&def).unwrap().run().unwrap();
    // no repair: cpu down by t if its own failure OR the fan's failure
    // fired: R(t) = e^{-(0.001+0.05)t}
    let t = 30.0;
    let got = report.reliability(t);
    let expected = (-(0.051f64) * t).exp();
    assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
}

/// The three reduction strategies and the flat ablation agree on a model
/// with non-trivial concurrency.
#[test]
fn strategies_agree_on_concurrent_model() {
    let mut def = SystemDef::new("conc");
    for n in ["a", "b", "c"] {
        def.add_component(BcDef::new(n, Dist::exp(0.03), Dist::exp(0.7)));
    }
    def.add_repair_unit(RuDef::new("r1", ["a", "b"], RepairStrategy::Fcfs));
    def.add_repair_unit(RuDef::new("r2", ["c"], RepairStrategy::Dedicated));
    def.set_system_down(Expr::or([
        Expr::and([Expr::down("a"), Expr::down("b")]),
        Expr::down("c"),
    ]));
    let model = SystemModel::build(&def).unwrap();
    let mut results = Vec::new();
    for strategy in [Strategy::Branching, Strategy::Strong, Strategy::None] {
        for reduce_intermediate in [true, false] {
            let agg = aggregate(
                &model,
                &EngineOptions {
                    strategy,
                    reduce_intermediate,
                    ..EngineOptions::new()
                },
            )
            .unwrap();
            results.push(measures::steady_state_unavailability(&agg.ctmc, 1));
        }
    }
    for w in results.windows(2) {
        assert!((w[0] - w[1]).abs() < 1e-10, "{results:?}");
    }
}

/// Branching reduction yields the smallest CTMC of the strategies.
#[test]
fn branching_reduces_most() {
    let mut def = SystemDef::new("size");
    for n in ["a", "b"] {
        def.add_component(BcDef::new(n, Dist::exp(0.01), Dist::exp(1.0)));
    }
    def.add_repair_unit(RuDef::new("r", ["a", "b"], RepairStrategy::Fcfs));
    def.set_system_down(Expr::and([Expr::down("a"), Expr::down("b")]));
    let model = SystemModel::build(&def).unwrap();
    let sizes: Vec<usize> = [Strategy::Branching, Strategy::Strong, Strategy::None]
        .iter()
        .map(|&strategy| {
            aggregate(
                &model,
                &EngineOptions {
                    strategy,
                    ..EngineOptions::new()
                },
            )
            .unwrap()
            .ctmc
            .num_states()
        })
        .collect();
    assert!(sizes[0] <= sizes[1]);
    assert!(sizes[1] <= sizes[2]);
}
