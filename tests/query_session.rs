//! Acceptance tests for the query-driven measure engine: the lazy
//! `Session` answers batched curves with one aggregation per needed
//! configuration and a fraction of the scalar loop's uniformization work,
//! while agreeing with the scalar path to 1e-10 — checked on the DDS case
//! study.

use std::sync::Mutex;

use arcade::build::observer::DOWN_BIT;
use arcade::cases::dds::{dds_scaled, FIVE_WEEKS_H};
use arcade::prelude::*;
use ctmc::measures;
use ctmc::transient::{dtmc_steps_performed, reset_solver_counters};

/// The DTMC step counters are process-wide atomics, so every test in this
/// binary serializes through this lock — a concurrent transient solve
/// from a sibling test would otherwise leak steps into a measured window.
static COUNTERS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    COUNTERS.lock().unwrap_or_else(|e| e.into_inner())
}

/// A 50-point unavailability + first-passage curve on the DDS case:
/// exactly one aggregation (only the availability configuration is
/// needed), one absorbing transformation, and at least 5x fewer DTMC
/// steps than the per-point scalar loop — with identical values.
#[test]
fn dds_curve_batched_is_5x_cheaper_and_agrees() {
    let _g = lock();
    let def = dds_scaled(1);
    let session = Session::new(&def).expect("valid DDS");
    let grid: Vec<f64> = (1..=50)
        .map(|k| FIVE_WEEKS_H * f64::from(k) / 50.0)
        .collect();
    let mut batch: Vec<Measure> = grid
        .iter()
        .map(|&t| Measure::PointUnavailability(t))
        .collect();
    batch.extend(grid.iter().map(|&t| Measure::UnreliabilityWithRepair(t)));

    reset_solver_counters();
    let values = session.evaluate(&batch).expect("batched curve");
    let batched_steps = dtmc_steps_performed();

    // Laziness: both curves live on the availability configuration, so
    // exactly one aggregation ran; the absorbing-down chain was built
    // once for the whole first-passage grid.
    assert_eq!(session.stats().aggregations_built, 1);
    assert_eq!(session.stats().absorbing_built, 1);

    // The scalar loop: one independent transient solve per point and one
    // absorbing transformation + solve per first-passage point.
    let ctmc = &session.availability_model().expect("built").ctmc;
    reset_solver_counters();
    let scalar_unavail: Vec<f64> = grid
        .iter()
        .map(|&t| measures::point_unavailability(ctmc, DOWN_BIT, t))
        .collect();
    let scalar_fp: Vec<f64> = grid
        .iter()
        .map(|&t| measures::unreliability(ctmc, DOWN_BIT, t))
        .collect();
    let scalar_steps = dtmc_steps_performed();

    assert!(
        batched_steps * 5 <= scalar_steps,
        "batched curve must be >=5x cheaper: {batched_steps} vs {scalar_steps} DTMC steps"
    );

    for (i, &t) in grid.iter().enumerate() {
        assert!(
            (values[i] - scalar_unavail[i]).abs() < 1e-10,
            "unavailability at t={t}: batched {} vs scalar {}",
            values[i],
            scalar_unavail[i]
        );
        assert!(
            (values[50 + i] - scalar_fp[i]).abs() < 1e-10,
            "unreliability at t={t}: batched {} vs scalar {}",
            values[50 + i],
            scalar_fp[i]
        );
    }
}

/// The batched `Session` answers exactly what the eager `AnalysisReport`
/// answers one measure at a time.
#[test]
fn session_batch_matches_analysis_report() {
    let _g = lock();
    let mut def = SystemDef::new("xcheck");
    def.add_component(BcDef::new("pp", Dist::exp(0.02), Dist::exp(0.5)));
    def.add_component(
        BcDef::new("ps", Dist::exp(0.02), Dist::exp(0.5))
            .with_om_group(OmGroup::ActiveInactive)
            .with_ttf([Dist::exp(0.002), Dist::exp(0.02)]),
    );
    def.add_repair_unit(RuDef::new("rep", ["pp", "ps"], RepairStrategy::Fcfs));
    def.add_smu(SmuDef::new("smu", "pp", ["ps"]));
    def.set_system_down(Expr::and([Expr::down("pp"), Expr::down("ps")]));

    let report = Analysis::new(&def).unwrap().run().unwrap();
    let session = Session::new(&def).unwrap();
    let ts = [1.0, 10.0, 50.0, 200.0];
    let mut batch = vec![
        Measure::SteadyStateAvailability,
        Measure::SteadyStateUnavailability,
        Measure::Mttf,
    ];
    for &t in &ts {
        batch.push(Measure::PointUnavailability(t));
        batch.push(Measure::Reliability(t));
        batch.push(Measure::UnreliabilityWithRepair(t));
    }
    let values = session.evaluate(&batch).unwrap();
    assert!((values[0] - report.steady_state_availability()).abs() < 1e-12);
    assert!((values[1] - report.steady_state_unavailability()).abs() < 1e-12);
    assert!((values[2] - report.mttf()).abs() < 1e-9);
    for (i, &t) in ts.iter().enumerate() {
        assert!((values[3 + 3 * i] - report.point_unavailability(t)).abs() < 1e-12);
        assert!((values[4 + 3 * i] - report.reliability(t)).abs() < 1e-12);
        assert!((values[5 + 3 * i] - report.unreliability_with_repair(t)).abs() < 1e-12);
    }
    // Both configurations were needed (reliability is a no-repair
    // measure) and nothing was built twice.
    assert_eq!(session.stats().aggregations_built, 2);
    assert_eq!(session.stats().steady_solves, 1);
}

/// Unfailable systems answer the degenerate values through the batch
/// path too.
#[test]
fn unfailable_system_degenerates_gracefully() {
    let mut def = SystemDef::new("solid");
    def.add_component(BcDef::new("a", Dist::Never, Dist::exp(1.0)));
    def.add_component(BcDef::new("b", Dist::exp(0.1), Dist::exp(1.0)));
    def.add_repair_unit(RuDef::new("rb", ["b"], RepairStrategy::Dedicated));
    // down only when the unfailable component fails
    def.set_system_down(Expr::down("a"));
    let session = Session::new(&def).unwrap();
    let v = session
        .evaluate(&[
            Measure::SteadyStateAvailability,
            Measure::Unreliability(100.0),
            Measure::UnreliabilityWithRepair(100.0),
            Measure::Mttf,
        ])
        .unwrap();
    assert_eq!(v[0], 1.0);
    assert_eq!(v[1], 0.0);
    assert_eq!(v[2], 0.0);
    assert_eq!(v[3], f64::INFINITY);
}
