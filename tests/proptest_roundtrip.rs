//! Parser/printer round-trip property test: randomly generated
//! [`SystemDef`]s survive `parse_system(&to_arcade_text(def))` exactly —
//! distributions, operational-mode groups, failure modes, repair
//! strategies (with priorities), SMUs with failover, and SYSTEM DOWN
//! expressions including the `2of4(...)` shorthand. Cases come from a
//! deterministically seeded internal generator (the workspace is
//! dependency-free, so it plays the role of proptest).

use smallrand::SmallRng;

use arcade::ast::{BcDef, OmGroup, RepairStrategy, RuDef, SmuDef, SystemDef};
use arcade::dist::Dist;
use arcade::expr::Expr;
use arcade::parser::parse_system;
use arcade::printer::to_arcade_text;

const CASES: u64 = 64;

/// A random phase-type distribution with a round-trip-exact rate (Rust
/// prints f64 shortest-exact, and the parser reads it back verbatim).
fn arb_dist(rng: &mut SmallRng) -> Dist {
    let rate = f64::from(rng.range_u32(1, 999)) * 10f64.powi(rng.range_u32(0, 9) as i32 - 6);
    match rng.range_u32(0, 4) {
        0 => Dist::exp(rate),
        1 => Dist::erlang(rng.range_u32(2, 5), rate),
        2 => Dist::hypo([rate, rate * 2.0]),
        _ => Dist::exp(rate * 0.5),
    }
}

/// A random failure literal over the generated component names;
/// mode-specific literals only where the component has the modes.
fn arb_literal(rng: &mut SmallRng, comps: &[BcDef]) -> Expr {
    let c = &comps[rng.range_usize(0, comps.len())];
    if c.num_failure_modes() > 1 && rng.flip() {
        Expr::down_mode(&c.name, rng.range_u32(1, c.num_failure_modes() as u32 + 1))
    } else if c.df.is_some() && rng.flip() {
        Expr::down_df(&c.name)
    } else {
        Expr::down(&c.name)
    }
}

/// A random SYSTEM DOWN expression of bounded depth over the components.
fn arb_expr(rng: &mut SmallRng, comps: &[BcDef], depth: u32) -> Expr {
    if depth == 0 || rng.range_u32(0, 4) == 0 {
        return arb_literal(rng, comps);
    }
    let n = rng.range_usize(2, 5);
    let children: Vec<Expr> = (0..n).map(|_| arb_expr(rng, comps, depth - 1)).collect();
    match rng.range_u32(0, 3) {
        0 => Expr::and(children),
        1 => Expr::or(children),
        _ => Expr::k_of_n(rng.range_u32(2, n as u32 + 1), children),
    }
}

/// A random, structurally sane system definition.
fn arb_system(rng: &mut SmallRng) -> SystemDef {
    let mut def = SystemDef::new(format!("gen{}", rng.range_u32(0, 1000)));
    let n = rng.range_usize(2, 6);
    let mut comps: Vec<BcDef> = Vec::new();
    for i in 0..n {
        let mut bc = BcDef::new(format!("c{i}"), arb_dist(rng), arb_dist(rng));
        // One optional expression-driven OM group (needs a trigger over an
        // *earlier* component so the expression is well-formed).
        if i > 0 && rng.flip() {
            let trigger = arb_literal(rng, &comps);
            let group = match rng.range_u32(0, 3) {
                0 => OmGroup::OnOff(trigger),
                1 => OmGroup::AccessibleInaccessible(trigger),
                _ => OmGroup::NormalDegraded(trigger),
            };
            let inaccessible = matches!(group, OmGroup::AccessibleInaccessible(_));
            bc = bc
                .with_om_group(group)
                .with_ttf([arb_dist(rng), arb_dist(rng)]);
            if inaccessible && rng.flip() {
                bc = bc.with_inaccessible_means_down(true);
            }
        }
        // Optional two failure modes with per-mode repairs.
        if rng.flip() {
            let p = f64::from(rng.range_u32(1, 100)) / 128.0;
            bc = bc.with_failure_modes([p, 1.0 - p], [arb_dist(rng), arb_dist(rng)]);
        }
        // Optional destructive dependency on an earlier component.
        if i > 0 && rng.range_u32(0, 4) == 0 {
            bc = bc.with_df(arb_literal(rng, &comps), arb_dist(rng));
        }
        comps.push(bc);
    }
    for bc in &comps {
        def.add_component(bc.clone());
    }

    // Partition the components into repair units with random strategies.
    let mut names: Vec<String> = comps.iter().map(|c| c.name.clone()).collect();
    let mut ri = 0usize;
    while !names.is_empty() {
        let take = rng.range_usize(1, names.len() + 1);
        let members: Vec<String> = names.drain(..take).collect();
        let strategy = match rng.range_u32(0, 5) {
            0 => RepairStrategy::Dedicated,
            1 => RepairStrategy::Fcfs,
            2 => RepairStrategy::PreemptivePriority,
            3 => RepairStrategy::NonPreemptivePriority,
            _ => RepairStrategy::Fcfs,
        };
        let mut ru = RuDef::new(format!("ru{ri}"), members.clone(), strategy);
        if matches!(
            strategy,
            RepairStrategy::PreemptivePriority | RepairStrategy::NonPreemptivePriority
        ) {
            let prios: Vec<u32> = members.iter().map(|_| rng.range_u32(0, 9)).collect();
            ru = ru.with_priorities(prios);
        }
        def.add_repair_unit(ru);
        ri += 1;
    }

    // Occasionally one SMU over the first two components.
    if n >= 2 && rng.range_u32(0, 3) == 0 {
        let mut smu = SmuDef::new("smu0", "c0", ["c1"]);
        if rng.flip() {
            smu = smu.with_failover(arb_dist(rng));
        }
        def.add_smu(smu);
    }

    def.set_system_down(arb_expr(rng, &comps, 2));
    def
}

#[test]
fn parse_print_round_trip_reproduces_the_model() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xA11CE ^ seed);
        let def = arb_system(&mut rng);
        let text = to_arcade_text(&def);
        let back = parse_system(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: round trip failed: {e}\n{text}"));
        assert_eq!(back.components, def.components, "seed {seed}\n{text}");
        assert_eq!(back.repair_units, def.repair_units, "seed {seed}\n{text}");
        assert_eq!(back.smus, def.smus, "seed {seed}\n{text}");
        assert_eq!(back.system_down, def.system_down, "seed {seed}\n{text}");
    }
}

/// The k-of-n shorthand specifically: `2of4(...)` and friends survive at
/// every arity the generator can produce, including nested gates.
#[test]
fn kofn_gates_round_trip() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(7_000 + seed);
        let n = rng.range_usize(3, 7);
        let comps: Vec<BcDef> = (0..n)
            .map(|i| BcDef::new(format!("c{i}"), Dist::exp(0.01), Dist::exp(1.0)))
            .collect();
        let k = rng.range_u32(2, n as u32 + 1);
        let mut children: Vec<Expr> = (1..n).map(|i| Expr::down(format!("c{i}"))).collect();
        // one nested gate as a child, so k-of-n inside k-of-n is covered
        children.push(Expr::k_of_n(2, (0..3).map(|i| Expr::down(format!("c{i}")))));
        let gate = Expr::k_of_n(k, children);
        let mut def = SystemDef::new("kofn");
        for c in &comps {
            def.add_component(c.clone());
        }
        def.set_system_down(gate);
        let text = to_arcade_text(&def);
        let back = parse_system(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: round trip failed: {e}\n{text}"));
        assert_eq!(back.system_down, def.system_down, "seed {seed}\n{text}");
    }
}
