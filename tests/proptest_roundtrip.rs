//! Parser/printer round-trip property test: randomly generated
//! [`SystemDef`]s survive `parse_system(&to_arcade_text(def))` exactly —
//! distributions, operational-mode groups, failure modes, repair
//! strategies (with priorities), SMUs with failover, and SYSTEM DOWN
//! expressions including the `2of4(...)` shorthand. Models come from the
//! shared [`arcade::fuzz`] generator under its widest structural profile
//! ([`GenConfig::syntax`]), so the fuzzer and this suite always cover
//! the same space.

use smallrand::SmallRng;

use arcade::ast::{BcDef, SystemDef};
use arcade::dist::Dist;
use arcade::expr::Expr;
use arcade::fuzz::{gen_system, GenConfig};
use arcade::parser::parse_system;
use arcade::printer::to_arcade_text;

const CASES: u64 = 64;

#[test]
fn parse_print_round_trip_reproduces_the_model() {
    let cfg = GenConfig::syntax();
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xA11CE ^ seed);
        let def = gen_system(&mut rng, &cfg);
        let text = to_arcade_text(&def);
        let back = parse_system(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: round trip failed: {e}\n{text}"));
        assert_eq!(back.components, def.components, "seed {seed}\n{text}");
        assert_eq!(back.repair_units, def.repair_units, "seed {seed}\n{text}");
        assert_eq!(back.smus, def.smus, "seed {seed}\n{text}");
        assert_eq!(back.system_down, def.system_down, "seed {seed}\n{text}");
    }
}

/// The k-of-n shorthand specifically: `2of4(...)` and friends survive at
/// every arity the generator can produce, including nested gates.
#[test]
fn kofn_gates_round_trip() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(7_000 + seed);
        let n = rng.range_usize(3, 7);
        let comps: Vec<BcDef> = (0..n)
            .map(|i| BcDef::new(format!("c{i}"), Dist::exp(0.01), Dist::exp(1.0)))
            .collect();
        let k = rng.range_u32(2, n as u32 + 1);
        let mut children: Vec<Expr> = (1..n).map(|i| Expr::down(format!("c{i}"))).collect();
        // one nested gate as a child, so k-of-n inside k-of-n is covered
        children.push(Expr::k_of_n(2, (0..3).map(|i| Expr::down(format!("c{i}")))));
        let gate = Expr::k_of_n(k, children);
        let mut def = SystemDef::new("kofn");
        for c in &comps {
            def.add_component(c.clone());
        }
        def.set_system_down(gate);
        let text = to_arcade_text(&def);
        let back = parse_system(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: round trip failed: {e}\n{text}"));
        assert_eq!(back.system_down, def.system_down, "seed {seed}\n{text}");
    }
}
