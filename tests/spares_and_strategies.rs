//! Integration tests for spare management (§3.3, including the multi-spare
//! configuration the paper sketches) and repair strategies (§3.2).

use arcade::prelude::*;

fn n_spare_system(n_spares: usize, cold: bool) -> SystemDef {
    let mut def = SystemDef::new(format!("spares{n_spares}"));
    def.add_component(BcDef::new("pp", Dist::exp(0.02), Dist::exp(0.2)));
    let mut all = vec!["pp".to_owned()];
    for i in 0..n_spares {
        let name = format!("sp{i}");
        let inactive = if cold { Dist::Never } else { Dist::exp(0.02) };
        def.add_component(
            BcDef::new(&name, Dist::exp(0.02), Dist::exp(0.2))
                .with_om_group(OmGroup::ActiveInactive)
                .with_ttf([inactive, Dist::exp(0.02)]),
        );
        all.push(name);
    }
    def.add_repair_unit(RuDef::new("shop", all.clone(), RepairStrategy::Fcfs));
    def.add_smu(SmuDef::new("smu", "pp", all[1..].to_vec()));
    def.set_system_down(Expr::And(all.iter().map(Expr::down).collect()));
    def
}

/// More spares monotonically improve MTTF and availability.
#[test]
fn more_spares_help() {
    let mut last_mttf = 0.0;
    let mut last_avail = 0.0;
    for n in 1..=3usize {
        let report = Analysis::new(&n_spare_system(n, false))
            .unwrap()
            .run()
            .unwrap();
        let mttf = report.mttf();
        let avail = report.steady_state_availability();
        assert!(
            mttf > last_mttf,
            "{n} spares: MTTF {mttf} not better than {last_mttf}"
        );
        assert!(avail > last_avail);
        last_mttf = mttf;
        last_avail = avail;
    }
}

/// A cold spare (cannot fail while inactive) beats a hot spare.
#[test]
fn cold_spare_beats_hot_spare() {
    let hot = Analysis::new(&n_spare_system(1, false))
        .unwrap()
        .run()
        .unwrap();
    let cold = Analysis::new(&n_spare_system(1, true))
        .unwrap()
        .run()
        .unwrap();
    assert!(cold.mttf() > hot.mttf());
    let t = 100.0;
    assert!(cold.reliability(t) > hot.reliability(t));
    // cold-spare closed form without repair: hypoexponential(λ, λ):
    // R(t) = e^{-λt}(1 + λt)
    let l = 0.02;
    let expected = (-l * t).exp() * (1.0 + l * t);
    let got = cold.reliability(t);
    assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
}

/// With two spares, the SMU walks the chain: cold spares without repair
/// give an Erlang-3 system lifetime.
#[test]
fn two_cold_spares_erlang_lifetime() {
    let report = Analysis::new(&n_spare_system(2, true))
        .unwrap()
        .run()
        .unwrap();
    let (l, t) = (0.02f64, 120.0);
    // no repair: pp fails, sp0 activated, fails, sp1 activated, fails:
    // total lifetime Erlang-3(λ)
    let x = l * t;
    let expected = (-x).exp() * (1.0 + x + x * x / 2.0);
    let got = report.reliability(t);
    assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
}

/// Priority strategies allocate the repair shop: giving the only critical
/// component priority improves availability over FCFS.
#[test]
fn priorities_help_the_critical_component() {
    let build = |strategy: RepairStrategy, prios: Vec<u32>| {
        let mut def = SystemDef::new("prio");
        // c0 is critical; c1/c2 fail often and clog the shop under FCFS.
        def.add_component(BcDef::new("c0", Dist::exp(0.01), Dist::exp(0.5)));
        def.add_component(BcDef::new("c1", Dist::exp(0.2), Dist::exp(0.5)));
        def.add_component(BcDef::new("c2", Dist::exp(0.2), Dist::exp(0.5)));
        let mut ru = RuDef::new("shop", ["c0", "c1", "c2"], strategy);
        if !prios.is_empty() {
            ru = ru.with_priorities(prios);
        }
        def.add_repair_unit(ru);
        def.set_system_down(Expr::down("c0"));
        Analysis::new(&def).unwrap().run().unwrap()
    };
    let fcfs = build(RepairStrategy::Fcfs, vec![]);
    let pnp = build(RepairStrategy::NonPreemptivePriority, vec![3, 1, 1]);
    let pp = build(RepairStrategy::PreemptivePriority, vec![3, 1, 1]);
    let u_fcfs = fcfs.steady_state_unavailability();
    let u_pnp = pnp.steady_state_unavailability();
    let u_pp = pp.steady_state_unavailability();
    assert!(u_pnp < u_fcfs, "PNP {u_pnp} vs FCFS {u_fcfs}");
    assert!(u_pp < u_pnp, "PP {u_pp} vs PNP {u_pnp}");
}
