//! Property-based tests of the algebraic laws the Arcade pipeline relies
//! on: composition laws of the I/O-IMC calculus, soundness of the
//! reductions, and agreement between the exact engine and the analytic
//! evaluator on randomly generated models. Cases are generated from a
//! deterministically seeded internal generator (the workspace is
//! dependency-free, so it plays the role of proptest).

use smallrand::SmallRng;

use arcade::analytic;
use arcade::prelude::*;
use bisim::pipeline::{equivalent, reduce, ReduceOptions, Strategy as Equivalence};
use ioimc::builder::IoImcBuilder;
use ioimc::compose::parallel;
use ioimc::{ActionId, IoImc};

/// A small random I/O-IMC over a fixed 4-action alphabet (1 input, 1
/// output chosen from two depending on a coin flip, internal tau).
fn arb_ioimc(rng: &mut SmallRng, outputs_from: [u32; 2]) -> IoImc {
    let n = rng.range_usize(2, 5);
    let num_inter = rng.range_usize(0, 10);
    let num_mark = rng.range_usize(0, 6);
    let input = ActionId(0);
    let output = ActionId(outputs_from[usize::from(rng.flip())]);
    let tau = ActionId(3);
    let mut b = IoImcBuilder::new();
    b.set_inputs([input])
        .set_outputs([output])
        .set_internals([tau]);
    for _ in 0..n {
        b.add_state();
    }
    let n = n as u32;
    for _ in 0..num_inter {
        let s = rng.range_u32(0, 5) % n;
        let act = match rng.range_u32(0, 4) {
            0 => input,
            1 | 2 => output,
            _ => tau,
        };
        let t = rng.range_u32(0, 5) % n;
        b.interactive(s, act, t);
    }
    for _ in 0..num_mark {
        let s = rng.range_u32(0, 5) % n;
        let r = f64::from(rng.range_u32(1, 4));
        let t = rng.range_u32(0, 5) % n;
        b.markovian(s, r, t);
    }
    b.complete_inputs()
        .build()
        .expect("generated automaton is valid")
}

fn tau() -> ActionId {
    // The generators above reserve id 3 for tau; reductions reuse it.
    ActionId(3)
}

const CASES: u64 = 64;

/// `a || b` and `b || a` are strongly bisimilar.
#[test]
fn composition_commutes() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = arb_ioimc(&mut rng, [1, 1]);
        let b = arb_ioimc(&mut rng, [2, 2]);
        let ab = parallel(&a, &b).expect("compose");
        let ba = parallel(&b, &a).expect("compose");
        let opts = ReduceOptions {
            strategy: Equivalence::Strong,
            tau: tau(),
        };
        assert!(equivalent(&ab, &ba, &opts), "seed {seed}");
    }
}

/// Branching reduction preserves branching equivalence.
#[test]
fn reduction_is_sound() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(1000 + seed);
        let a = arb_ioimc(&mut rng, [1, 1]);
        let opts = ReduceOptions {
            strategy: Equivalence::Branching,
            tau: tau(),
        };
        let red = reduce(&a, &opts).imc;
        assert!(equivalent(&a, &red, &opts), "seed {seed}");
    }
}

/// Reduction is idempotent (a second pass changes nothing).
#[test]
fn reduction_is_idempotent() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(2000 + seed);
        let a = arb_ioimc(&mut rng, [1, 2]);
        let opts = ReduceOptions {
            strategy: Equivalence::Branching,
            tau: tau(),
        };
        let once = reduce(&a, &opts).imc;
        let twice = reduce(&once, &opts).imc;
        assert_eq!(once.num_states(), twice.num_states());
        assert_eq!(once.num_transitions(), twice.num_transitions());
    }
}

/// Branching never reduces less than strong bisimulation.
#[test]
fn branching_at_least_as_coarse() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(3000 + seed);
        let a = arb_ioimc(&mut rng, [1, 2]);
        let strong = reduce(
            &a,
            &ReduceOptions {
                strategy: Equivalence::Strong,
                tau: tau(),
            },
        )
        .imc;
        let branching = reduce(
            &a,
            &ReduceOptions {
                strategy: Equivalence::Branching,
                tau: tau(),
            },
        )
        .imc;
        assert!(branching.num_states() <= strong.num_states());
    }
}

/// Reducing before composing gives an equivalent result to composing
/// before reducing — the essence of compositional aggregation.
#[test]
fn reduce_then_compose_equals_compose_then_reduce() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(4000 + seed);
        let a = arb_ioimc(&mut rng, [1, 1]);
        let b = arb_ioimc(&mut rng, [2, 2]);
        let opts = ReduceOptions {
            strategy: Equivalence::Branching,
            tau: tau(),
        };
        let composed_first = parallel(&a, &b).expect("compose");
        let ra = reduce(&a, &opts).imc;
        let rb = reduce(&b, &opts).imc;
        let reduced_first = parallel(&ra, &rb).expect("compose");
        assert!(
            equivalent(&composed_first, &reduced_first, &opts),
            "seed {seed}"
        );
    }
}

/// Random independent dependability models from the shared
/// [`arcade::fuzz`] generator: exponential components with dedicated
/// repair, each appearing exactly once in a flat gate — the sub-space on
/// which the analytic independent-component evaluation is exact. Paired
/// with a random evaluation horizon.
fn arb_system(rng: &mut SmallRng) -> (SystemDef, f64) {
    let def = arcade::fuzz::gen_system(rng, &arcade::fuzz::GenConfig::independent());
    let t = f64::from(rng.range_u32(1, 100));
    (def, t)
}

/// Engine == analytic on independent systems, for availability and
/// no-repair reliability.
#[test]
fn engine_matches_analytic() {
    for seed in 0..24 {
        let mut rng = SmallRng::seed_from_u64(5000 + seed);
        let (def, t) = arb_system(&mut rng);
        let report = Analysis::new(&def).expect("valid").run().expect("analysis");
        let a_engine = report.steady_state_unavailability();
        let a_analytic = analytic::independent_unavailability(&def).expect("analytic");
        assert!(
            (a_engine - a_analytic).abs() < 1e-9,
            "seed {seed} availability: engine {a_engine} vs analytic {a_analytic}"
        );
        let r_engine = report.unreliability(t);
        let r_analytic =
            analytic::static_unreliability(&def.without_repair(), t).expect("analytic");
        assert!(
            (r_engine - r_analytic).abs() < 1e-8,
            "seed {seed} unreliability({t}): engine {r_engine} vs analytic {r_analytic}"
        );
    }
}

/// Measures are proper probabilities and consistent with each other.
#[test]
fn measures_are_probabilities() {
    for seed in 0..24 {
        let mut rng = SmallRng::seed_from_u64(6000 + seed);
        let (def, t) = arb_system(&mut rng);
        let report = Analysis::new(&def).expect("valid").run().expect("analysis");
        let a = report.steady_state_availability();
        assert!((0.0..=1.0).contains(&a));
        let r1 = report.reliability(t);
        let r2 = report.reliability(t * 2.0);
        assert!((0.0..=1.0).contains(&r1));
        assert!(r2 <= r1 + 1e-12, "reliability must be non-increasing");
        // first passage with repair never exceeds no-repair unreliability
        assert!(report.unreliability_with_repair(t) <= report.unreliability(t) + 1e-9);
    }
}
