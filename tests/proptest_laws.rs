//! Property-based tests of the algebraic laws the Arcade pipeline relies
//! on: composition laws of the I/O-IMC calculus, soundness of the
//! reductions, and agreement between the exact engine and the analytic
//! evaluator on randomly generated models.

use proptest::prelude::*;

use arcade::analytic;
use arcade::prelude::*;
use bisim::pipeline::{equivalent, reduce, ReduceOptions, Strategy as Equivalence};
use ioimc::builder::IoImcBuilder;
use ioimc::compose::parallel;
use ioimc::{ActionId, IoImc};

/// Strategy: a small random I/O-IMC over a fixed 4-action alphabet
/// (1 input, 1 output chosen from two depending on `flip`, internal tau).
fn arb_ioimc(outputs_from: [u32; 2]) -> impl Strategy<Value = IoImc> {
    let n_states = 2usize..5;
    (
        n_states,
        proptest::collection::vec((0u32..5, 0u32..4, 0u32..5), 0..10),
        proptest::collection::vec((0u32..5, 1u32..4, 0u32..5), 0..6),
        any::<bool>(),
    )
        .prop_map(move |(n, inter, mark, flip)| {
            let input = ActionId(0);
            let output = ActionId(outputs_from[usize::from(flip)]);
            let tau = ActionId(3);
            let mut b = IoImcBuilder::new();
            b.set_inputs([input]).set_outputs([output]).set_internals([tau]);
            for _ in 0..n {
                b.add_state();
            }
            let n = n as u32;
            for (s, a, t) in inter {
                let act = match a {
                    0 => input,
                    1 | 2 => output,
                    _ => tau,
                };
                b.interactive(s % n, act, t % n);
            }
            for (s, r, t) in mark {
                b.markovian(s % n, f64::from(r), t % n);
            }
            b.complete_inputs().build().expect("generated automaton is valid")
        })
}

fn tau() -> ActionId {
    // The generators above reserve id 3 for tau; reductions reuse it.
    ActionId(3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `a || b` and `b || a` are strongly bisimilar.
    #[test]
    fn composition_commutes(a in arb_ioimc([1, 1]), b in arb_ioimc([2, 2])) {
        let ab = parallel(&a, &b).expect("compose");
        let ba = parallel(&b, &a).expect("compose");
        let opts = ReduceOptions { strategy: Equivalence::Strong, tau: tau() };
        prop_assert!(equivalent(&ab, &ba, &opts));
    }

    /// Branching reduction preserves branching equivalence.
    #[test]
    fn reduction_is_sound(a in arb_ioimc([1, 1])) {
        let opts = ReduceOptions { strategy: Equivalence::Branching, tau: tau() };
        let red = reduce(&a, &opts).imc;
        prop_assert!(equivalent(&a, &red, &opts));
    }

    /// Reduction is idempotent (a second pass changes nothing).
    #[test]
    fn reduction_is_idempotent(a in arb_ioimc([1, 2])) {
        let opts = ReduceOptions { strategy: Equivalence::Branching, tau: tau() };
        let once = reduce(&a, &opts).imc;
        let twice = reduce(&once, &opts).imc;
        prop_assert_eq!(once.num_states(), twice.num_states());
        prop_assert_eq!(once.num_transitions(), twice.num_transitions());
    }

    /// Branching never reduces less than strong bisimulation.
    #[test]
    fn branching_at_least_as_coarse(a in arb_ioimc([1, 2])) {
        let strong = reduce(&a, &ReduceOptions { strategy: Equivalence::Strong, tau: tau() }).imc;
        let branching = reduce(&a, &ReduceOptions { strategy: Equivalence::Branching, tau: tau() }).imc;
        prop_assert!(branching.num_states() <= strong.num_states());
    }

    /// Reducing before composing gives an equivalent result to composing
    /// before reducing — the essence of compositional aggregation.
    #[test]
    fn reduce_then_compose_equals_compose_then_reduce(
        a in arb_ioimc([1, 1]),
        b in arb_ioimc([2, 2]),
    ) {
        let opts = ReduceOptions { strategy: Equivalence::Branching, tau: tau() };
        let composed_first = parallel(&a, &b).expect("compose");
        let ra = reduce(&a, &opts).imc;
        let rb = reduce(&b, &opts).imc;
        let reduced_first = parallel(&ra, &rb).expect("compose");
        prop_assert!(equivalent(&composed_first, &reduced_first, &opts));
    }
}

/// Random series-parallel dependability models: the exact engine must
/// agree with the analytic independent-component evaluation (valid because
/// repair is dedicated and components appear once).
fn arb_system() -> impl Strategy<Value = (SystemDef, f64)> {
    let comp = (1u32..50, 1u32..20);
    (proptest::collection::vec(comp, 2..5), 0u8..3, 1u32..100).prop_map(
        |(comps, shape, t)| {
            let mut def = SystemDef::new("prop");
            let mut lits = Vec::new();
            for (i, (lam, mu)) in comps.iter().enumerate() {
                let name = format!("c{i}");
                def.add_component(BcDef::new(
                    &name,
                    Dist::exp(f64::from(*lam) * 1e-3),
                    Dist::exp(f64::from(*mu) * 0.1),
                ));
                def.add_repair_unit(RuDef::new(
                    format!("{name}.rep"),
                    [name.clone()],
                    RepairStrategy::Dedicated,
                ));
                lits.push(Expr::down(name));
            }
            let n = lits.len() as u32;
            let expr = match shape {
                0 => Expr::Or(lits),
                1 => Expr::And(lits),
                _ => Expr::KofN(n.div_ceil(2), lits),
            };
            def.set_system_down(expr);
            (def, f64::from(t))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine == analytic on independent systems, for availability and
    /// no-repair reliability.
    #[test]
    fn engine_matches_analytic((def, t) in arb_system()) {
        let report = Analysis::new(&def).expect("valid").run().expect("analysis");
        let a_engine = report.steady_state_unavailability();
        let a_analytic = analytic::independent_unavailability(&def).expect("analytic");
        prop_assert!(
            (a_engine - a_analytic).abs() < 1e-9,
            "availability: engine {} vs analytic {}", a_engine, a_analytic
        );
        let r_engine = report.unreliability(t);
        let r_analytic = analytic::static_unreliability(&def.without_repair(), t).expect("analytic");
        prop_assert!(
            (r_engine - r_analytic).abs() < 1e-8,
            "unreliability({}): engine {} vs analytic {}", t, r_engine, r_analytic
        );
    }

    /// Measures are proper probabilities and consistent with each other.
    #[test]
    fn measures_are_probabilities((def, t) in arb_system()) {
        let report = Analysis::new(&def).expect("valid").run().expect("analysis");
        let a = report.steady_state_availability();
        prop_assert!((0.0..=1.0).contains(&a));
        let r1 = report.reliability(t);
        let r2 = report.reliability(t * 2.0);
        prop_assert!((0.0..=1.0).contains(&r1));
        prop_assert!(r2 <= r1 + 1e-12, "reliability must be non-increasing");
        // first passage with repair never exceeds no-repair unreliability
        prop_assert!(report.unreliability_with_repair(t) <= report.unreliability(t) + 1e-9);
    }
}
