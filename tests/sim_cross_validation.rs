//! End-to-end cross-validation of the exact engine against the
//! independent Monte-Carlo simulator (`arcade::sim`), on the paper's two
//! case studies. The sim module documents this oracle role; this test
//! enforces it: seeded, deterministic MC estimates must bracket the exact
//! measures inside their 95% confidence intervals.
//!
//! Measures are chosen where Monte Carlo has resolving power (event
//! probabilities well above 1/reps). The RCS *with-repair* measures sit
//! around 1e-9 and are unreachable for plain MC — the no-repair
//! unreliability at long horizons is the MC-tractable RCS measure, and
//! the exact side goes through the same `Session`-backed pipeline.

use arcade::cases::dds::dds;
use arcade::cases::rcs::rcs;
use arcade::engine::EngineOptions;
use arcade::modular::modular_analysis;
use arcade::query::{Measure, Session};
use arcade::sim::{simulate_unavailability, simulate_unreliability};

/// DDS: the no-repair unreliability (Table 1's R complemented), the
/// with-repair first passage, and the long-run unavailability — one
/// batched exact evaluation, three independent seeded estimators.
#[test]
fn dds_exact_measures_lie_in_simulation_confidence_intervals() {
    let def = dds();
    let t = 840.0; // the paper's five-week mission
    let session = Session::new(&def).expect("DDS session");
    let exact = session
        .evaluate(&[
            Measure::Unreliability(t),
            Measure::UnreliabilityWithRepair(t),
            Measure::SteadyStateUnavailability,
        ])
        .expect("exact measures");

    let no_repair = simulate_unreliability(&def, t, 20_000, 42, false).expect("sim runs");
    assert!(
        no_repair.contains(exact[0]),
        "no-repair unreliability {:.6e} outside CI {:?}",
        exact[0],
        no_repair
    );

    let with_repair = simulate_unreliability(&def, t, 20_000, 43, true).expect("sim runs");
    assert!(
        with_repair.contains(exact[1]),
        "with-repair unreliability {:.6e} outside CI {:?}",
        exact[1],
        with_repair
    );

    // Long-run unavailability as a time average over a long horizon; the
    // estimator is noisy (rare ~1h down intervals in a 150k-hour run),
    // so its own CI is wide — the exact value must still sit inside it.
    let unavail = simulate_unavailability(&def, 150_000.0, 60, 7).expect("sim runs");
    assert!(
        unavail.contains(exact[2]),
        "steady unavailability {:.6e} outside CI {:?}",
        exact[2],
        unavail
    );
}

/// RCS: no-repair unreliability at long horizons (where the failure
/// probability is MC-sized), exact values from the modular analysis
/// (each module a `Session`-backed report; the decomposition is exact
/// for independent modules).
#[test]
fn rcs_exact_measures_lie_in_simulation_confidence_intervals() {
    let def = rcs();
    let modular = modular_analysis(&def, &EngineOptions::new()).expect("RCS analysis");
    for (t, seed) in [(200_000.0, 11u64), (400_000.0, 12)] {
        let exact = 1.0 - modular.reliability(t);
        let est = simulate_unreliability(&def, t, 20_000, seed, false).expect("sim runs");
        assert!(
            est.mean > 0.05 && est.mean < 0.95,
            "t={t}: estimate {est:?} has no MC resolving power — pick another horizon"
        );
        assert!(
            est.contains(exact),
            "t={t}: exact unreliability {exact:.6e} outside CI {est:?}"
        );
    }
}
