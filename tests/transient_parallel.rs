//! Parallel-vs-serial transient equality on the paper case studies.
//!
//! The sharded uniformization step computes every row with the serial
//! path's per-row code, so for any thread count and shard granularity the
//! grids must be **bitwise identical** — on the aggregated DDS and RCS
//! CTMCs, on their absorbing-down transforms, and with steady-state
//! detection both on and off.

use arcade::build::observer::DOWN_BIT;
use arcade::cases::dds;
use arcade::prelude::*;
use ctmc::transient::transient_many_with;
use ctmc::{Ctmc, TransientOptions};

/// The aggregated DDS availability CTMC, built once for the whole binary
/// (aggregation dominates the debug-profile runtime).
fn dds_ctmc() -> &'static Ctmc {
    static DDS: std::sync::OnceLock<Ctmc> = std::sync::OnceLock::new();
    DDS.get_or_init(|| {
        Session::new(&dds())
            .expect("case study is valid")
            .availability_model()
            .expect("aggregation succeeds")
            .ctmc
            .clone()
    })
}

fn assert_sharded_matches_serial(name: &str, ctmc: &Ctmc, grid: &[f64]) {
    for steady_tol in [1e-13, 0.0] {
        let serial = transient_many_with(
            ctmc,
            grid,
            &TransientOptions::default().with_steady_tol(steady_tol),
        );
        for threads in [2usize, 4] {
            for shard_min in [1usize, 64, 1024] {
                let opts = TransientOptions::default()
                    .with_steady_tol(steady_tol)
                    .with_threads(threads)
                    .with_shard_min(shard_min);
                let sharded = transient_many_with(ctmc, grid, &opts);
                assert_eq!(
                    sharded, serial,
                    "{name}: threads={threads} shard_min={shard_min} \
                     steady_tol={steady_tol}: grid not bitwise identical"
                );
            }
        }
    }
}

/// The 2,100-state DDS chain: unavailability grid and first-passage grid
/// (absorbing-down transform) across thread counts and shard sizes.
#[test]
fn dds_sharded_grids_match_serial() {
    let ctmc = dds_ctmc();
    assert!(ctmc.num_states() > 2000, "unexpected DDS size");
    let grid: Vec<f64> = (1..=8).map(|k| f64::from(k) * 150.0).collect();
    assert_sharded_matches_serial("dds", ctmc, &grid);

    let down: Vec<u32> = ctmc.states_with_label(DOWN_BIT).collect();
    let absorbing = ctmc.make_absorbing(down);
    assert_sharded_matches_serial("dds-absorbing", &absorbing, &grid);
}

/// A grid with a `t = 0` point and duplicates stays bitwise identical
/// under sharding too (the sweep must not step before the zero point).
///
/// The RCS side of this property lives in `exp_scaling`: the CI smoke run
/// (`--smoke --threads 2`) asserts the 83,808-state `rcs_scaled(2)` grid
/// is bitwise identical at every transient thread count — aggregating
/// that family is too slow for the test suite's debug profile.
#[test]
fn dds_grid_with_zero_and_duplicates_matches_serial() {
    let ctmc = dds_ctmc();
    let grid = [500.0, 0.0, 100.0, 100.0, 2000.0];
    assert_sharded_matches_serial("dds-zero-dup", ctmc, &grid);
}
